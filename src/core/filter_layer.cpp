#include "pnc/core/filter_layer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pnc/autodiff/ops.hpp"

namespace pnc::core {

FilterLayer::FilterLayer(std::string name, std::size_t channels,
                         FilterOrder order, double dt, util::Rng& rng)
    : name_(std::move(name)), channels_(channels), order_(order), dt_(dt) {
  if (channels == 0) throw std::invalid_argument("FilterLayer: 0 channels");
  if (dt <= 0.0) throw std::invalid_argument("FilterLayer: dt <= 0");

  auto init_stage = [&](ad::Parameter& log_r, ad::Parameter& log_c,
                        const std::string& suffix) {
    ad::Tensor lr(1, channels), lc(1, channels);
    for (std::size_t j = 0; j < channels; ++j) {
      // Spread the initial discrete-time poles a = RC/(RC+Δt) over a useful
      // memory range, then split RC into printable R and C. The upper end
      // is capped at 0.5: beyond it the coupling draw μ ∈ [1, 1.3] swings
      // the stage's DC gain dt/((μ-1)RC + dt) so strongly that no trained
      // solution survives fabrication (see DESIGN.md §4.3).
      const double a = rng.uniform(0.15, 0.5);
      const double rc = dt * a / (1.0 - a);
      const double c = rng.uniform(30e-6, 90e-6);
      const double r =
          std::clamp(rc / c, kResistanceMin, kResistanceMax);
      lr(0, j) = std::log(r);
      lc(0, j) = std::log(std::clamp(rc / r, kCapacitanceMin,
                                     kCapacitanceMax));
    }
    log_r = ad::Parameter(name_ + ".log_r" + suffix, std::move(lr));
    log_c = ad::Parameter(name_ + ".log_c" + suffix, std::move(lc));
  };
  init_stage(log_r1_, log_c1_, "1");
  if (order_ == FilterOrder::kSecond) init_stage(log_r2_, log_c2_, "2");
}

std::pair<ad::Var, ad::Var> FilterLayer::coefficients(
    ad::Graph& g, ad::Parameter& log_r, ad::Parameter& log_c,
    const variation::VariationSpec& spec, util::Rng& rng) const {
  ad::Var r = ad::exp(g.leaf(log_r));
  ad::Var c = ad::exp(g.leaf(log_c));
  if (spec.component) {
    r = ad::mul(r, g.constant(variation::sample_factors(*spec.component, 1,
                                                        channels_, rng)));
    c = ad::mul(c, g.constant(variation::sample_factors(*spec.component, 1,
                                                        channels_, rng)));
  }
  const ad::Var rc = ad::mul(r, c);
  ad::Tensor mu(1, channels_);
  for (auto& m : mu.data()) m = spec.sample_mu(rng);
  const ad::Var denom = ad::add_scalar(ad::mul(rc, g.constant(std::move(mu))),
                                       dt_);
  const ad::Var a = ad::div(rc, denom);
  const ad::Var b = ad::scale(ad::reciprocal(denom), dt_);
  return {a, b};
}

FilterLayer::Pass FilterLayer::begin(ad::Graph& g, std::size_t batch,
                                     const variation::VariationSpec& spec,
                                     util::Rng& rng) {
  Pass pass;
  std::tie(pass.a1, pass.b1) = coefficients(g, log_r1_, log_c1_, spec, rng);
  ad::Tensor h0(batch, channels_);
  for (auto& v : h0.data()) v = spec.sample_v0(rng);
  pass.h1 = g.constant(std::move(h0));
  if (order_ == FilterOrder::kSecond) {
    std::tie(pass.a2, pass.b2) = coefficients(g, log_r2_, log_c2_, spec, rng);
    ad::Tensor h0b(batch, channels_);
    for (auto& v : h0b.data()) v = spec.sample_v0(rng);
    pass.h2 = g.constant(std::move(h0b));
  }
  return pass;
}

ad::Var FilterLayer::step(ad::Graph& g, Pass& pass, ad::Var x) const {
  (void)g;
  pass.h1 = ad::add(ad::mul(pass.a1, pass.h1), ad::mul(pass.b1, x));
  if (order_ == FilterOrder::kFirst) return pass.h1;
  pass.h2 = ad::add(ad::mul(pass.a2, pass.h2), ad::mul(pass.b2, pass.h1));
  return pass.h2;
}

std::vector<ad::Parameter*> FilterLayer::parameters() {
  if (order_ == FilterOrder::kFirst) return {&log_r1_, &log_c1_};
  return {&log_r1_, &log_c1_, &log_r2_, &log_c2_};
}

void FilterLayer::clamp_printable() {
  auto clamp_log = [](ad::Parameter& p, double lo, double hi) {
    const double llo = std::log(lo);
    const double lhi = std::log(hi);
    for (auto& v : p.value.data()) v = std::clamp(v, llo, lhi);
  };
  clamp_log(log_r1_, kResistanceMin, kResistanceMax);
  clamp_log(log_c1_, kCapacitanceMin, kCapacitanceMax);
  if (order_ == FilterOrder::kSecond) {
    clamp_log(log_r2_, kResistanceMin, kResistanceMax);
    clamp_log(log_c2_, kCapacitanceMin, kCapacitanceMax);
  }
}

namespace {
const ad::Parameter& stage_param(const ad::Parameter& s1,
                                 const ad::Parameter& s2, std::size_t stage,
                                 FilterOrder order) {
  if (stage == 0) return s1;
  if (stage == 1 && order == FilterOrder::kSecond) return s2;
  throw std::out_of_range("FilterLayer: stage out of range");
}
}  // namespace

const ad::Tensor& FilterLayer::log_resistance(std::size_t stage) const {
  return stage_param(log_r1_, log_r2_, stage, order_).value;
}

const ad::Tensor& FilterLayer::log_capacitance(std::size_t stage) const {
  return stage_param(log_c1_, log_c2_, stage, order_).value;
}

ad::Tensor& FilterLayer::mutable_log_resistance(std::size_t stage) {
  return const_cast<ad::Parameter&>(stage_param(log_r1_, log_r2_, stage,
                                                order_))
      .value;
}

ad::Tensor& FilterLayer::mutable_log_capacitance(std::size_t stage) {
  return const_cast<ad::Parameter&>(stage_param(log_c1_, log_c2_, stage,
                                                order_))
      .value;
}

double FilterLayer::resistance(std::size_t stage, std::size_t j) const {
  return std::exp(stage_param(log_r1_, log_r2_, stage, order_).value.at(0, j));
}

double FilterLayer::capacitance(std::size_t stage, std::size_t j) const {
  return std::exp(stage_param(log_c1_, log_c2_, stage, order_).value.at(0, j));
}

double FilterLayer::nominal_pole(std::size_t stage, std::size_t j) const {
  const double rc = resistance(stage, j) * capacitance(stage, j);
  return rc / (rc + dt_);
}

}  // namespace pnc::core
