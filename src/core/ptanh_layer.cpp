#include "pnc/core/ptanh_layer.hpp"

#include <algorithm>
#include <stdexcept>

#include "pnc/autodiff/ops.hpp"

namespace pnc::core {

namespace {
// Realizable η windows for printable ptanh circuits: offsets within the
// supply rails, swing below the rail, positive gain bounded by achievable
// transconductance-load products.
constexpr double kEta1Min = -0.5, kEta1Max = 0.5;
constexpr double kEta2Min = 0.2, kEta2Max = 1.0;
constexpr double kEta3Min = -0.5, kEta3Max = 0.5;
constexpr double kEta4Min = 0.5, kEta4Max = 6.0;
}  // namespace

PtanhLayer::PtanhLayer(std::string name, std::size_t n_out, util::Rng& rng)
    : name_(std::move(name)), n_out_(n_out) {
  // Initialize from the behavioural fit of nominal printable components,
  // with small geometry spread between neurons.
  ad::Tensor e1(1, n_out), e2(1, n_out), e3(1, n_out), e4(1, n_out);
  for (std::size_t j = 0; j < n_out; ++j) {
    circuit::PtanhComponents q;
    q.r1 = rng.uniform(150e3, 350e3);
    q.r2 = rng.uniform(150e3, 350e3);
    q.t1_scale = rng.uniform(0.8, 1.2);
    q.t2_scale = rng.uniform(0.8, 1.2);
    const circuit::PtanhParams eta = circuit::fit_ptanh(q);
    e1(0, j) = std::clamp(eta.eta1, kEta1Min, kEta1Max);
    e2(0, j) = std::clamp(eta.eta2, kEta2Min, kEta2Max);
    e3(0, j) = std::clamp(eta.eta3, kEta3Min, kEta3Max);
    e4(0, j) = std::clamp(eta.eta4, kEta4Min, kEta4Max);
  }
  eta1_ = ad::Parameter(name_ + ".eta1", std::move(e1));
  eta2_ = ad::Parameter(name_ + ".eta2", std::move(e2));
  eta3_ = ad::Parameter(name_ + ".eta3", std::move(e3));
  eta4_ = ad::Parameter(name_ + ".eta4", std::move(e4));
}

PtanhLayer::Pass PtanhLayer::begin(ad::Graph& g,
                                   const variation::VariationSpec& spec,
                                   util::Rng& rng) {
  auto varied = [&](ad::Parameter& p) {
    ad::Var v = g.leaf(p);
    if (spec.component) {
      v = ad::mul(v, g.constant(variation::sample_factors(*spec.component, 1,
                                                          n_out_, rng)));
    }
    return v;
  };
  Pass pass;
  pass.e1 = varied(eta1_);
  pass.e2 = varied(eta2_);
  pass.e3 = varied(eta3_);
  pass.e4 = varied(eta4_);
  return pass;
}

ad::Var PtanhLayer::apply(ad::Graph& g, const Pass& pass, ad::Var x) const {
  (void)g;
  return ad::add(pass.e1, ad::mul(pass.e2, ad::tanh(ad::mul(
                              ad::sub(x, pass.e3), pass.e4))));
}

ad::Var PtanhLayer::forward(ad::Graph& g, ad::Var x,
                            const variation::VariationSpec& spec,
                            util::Rng& rng) {
  return apply(g, begin(g, spec, rng), x);
}

std::vector<ad::Parameter*> PtanhLayer::parameters() {
  return {&eta1_, &eta2_, &eta3_, &eta4_};
}

void PtanhLayer::clamp_printable() {
  auto clamp_row = [](ad::Parameter& p, double lo, double hi) {
    for (auto& v : p.value.data()) v = std::clamp(v, lo, hi);
  };
  clamp_row(eta1_, kEta1Min, kEta1Max);
  clamp_row(eta2_, kEta2Min, kEta2Max);
  clamp_row(eta3_, kEta3Min, kEta3Max);
  clamp_row(eta4_, kEta4Min, kEta4Max);
}

const ad::Tensor& PtanhLayer::eta(int k) const {
  switch (k) {
    case 1: return eta1_.value;
    case 2: return eta2_.value;
    case 3: return eta3_.value;
    case 4: return eta4_.value;
    default:
      throw std::out_of_range("PtanhLayer::eta: k must be in [1, 4]");
  }
}

circuit::PtanhParams PtanhLayer::params_of(std::size_t j) const {
  circuit::PtanhParams p;
  p.eta1 = eta1_.value.at(0, j);
  p.eta2 = eta2_.value.at(0, j);
  p.eta3 = eta3_.value.at(0, j);
  p.eta4 = eta4_.value.at(0, j);
  return p;
}

}  // namespace pnc::core
