#pragma once

#include <memory>
#include <vector>

#include "pnc/autodiff/tensor.hpp"
#include "pnc/util/rng.hpp"

namespace pnc::variation {

/// Multiplicative process-variation model for printed components.
///
/// Additive-manufacturing variation (ink dispersion, droplet irregularity,
/// missing droplets) is modeled as a random factor ε applied to the nominal
/// component value: value = nominal ⊙ ε (the reparameterization of
/// Sec. III-A). Implementations provide the distribution p(ε).
class VariationModel {
 public:
  virtual ~VariationModel() = default;

  /// Draw one multiplicative factor (always > 0).
  virtual double sample(util::Rng& rng) const = 0;

  virtual std::unique_ptr<VariationModel> clone() const = 0;
};

/// ε ≡ 1 (no variation; used for clean evaluation and the baseline).
class NoVariation final : public VariationModel {
 public:
  double sample(util::Rng&) const override { return 1.0; }
  std::unique_ptr<VariationModel> clone() const override {
    return std::make_unique<NoVariation>();
  }
};

/// ε ~ U(1 - δ, 1 + δ): the paper's ±10 % "precision printing" model.
class UniformVariation final : public VariationModel {
 public:
  explicit UniformVariation(double delta);
  double sample(util::Rng& rng) const override;
  double delta() const { return delta_; }
  std::unique_ptr<VariationModel> clone() const override {
    return std::make_unique<UniformVariation>(delta_);
  }

 private:
  double delta_;
};

/// ε ~ N(1, σ), truncated to [max(ε_min, 1-3σ), 1+3σ].
class GaussianVariation final : public VariationModel {
 public:
  explicit GaussianVariation(double sigma);
  double sample(util::Rng& rng) const override;
  double sigma() const { return sigma_; }
  std::unique_ptr<VariationModel> clone() const override {
    return std::make_unique<GaussianVariation>(sigma_);
  }

 private:
  double sigma_;
};

/// Device-level Gaussian mixture (Rasheed et al. [24]): captures
/// multi-modal behaviour, e.g. a nominal printing mode plus a degraded
/// mode from partially missing droplets.
class GaussianMixtureVariation final : public VariationModel {
 public:
  struct Component {
    double weight;  // > 0; normalized internally
    double mean;    // multiplicative, ~1
    double sigma;   // > 0
  };

  explicit GaussianMixtureVariation(std::vector<Component> components);
  double sample(util::Rng& rng) const override;
  const std::vector<Component>& components() const { return components_; }
  std::unique_ptr<VariationModel> clone() const override {
    return std::make_unique<GaussianMixtureVariation>(components_);
  }

 private:
  std::vector<Component> components_;  // weights normalized to sum 1
};

/// Tensor of i.i.d. factors with the given shape.
ad::Tensor sample_factors(const VariationModel& model, std::size_t rows,
                          std::size_t cols, util::Rng& rng);

/// In-place `values ⊙= ε` with i.i.d. ε from the model.
void apply_variation(ad::Tensor& values, const VariationModel& model,
                     util::Rng& rng);

/// Everything that is random but *not* trainable during variation-aware
/// training (Sec. III-A): the component variation distribution, the
/// coupling factor μ ~ U(mu_min, mu_max) and the initial filter voltage
/// V0 ~ U(v0_min, v0_max).
struct VariationSpec {
  std::shared_ptr<const VariationModel> component;  // p(ε) for θ, R, C
  double mu_min = 1.0;
  double mu_max = 1.3;
  double v0_min = -0.05;
  double v0_max = 0.05;
  int monte_carlo_samples = 4;  // N in Eq. (13)

  static VariationSpec none();
  /// The paper's evaluation setting: ±delta uniform component variation,
  /// μ ∈ [1, 1.3], small random initial voltages.
  static VariationSpec printing(double delta, int mc_samples = 4);

  double sample_mu(util::Rng& rng) const;
  double sample_v0(util::Rng& rng) const;
};

}  // namespace pnc::variation
