#pragma once

#include <memory>

#include "pnc/variation/variation.hpp"

namespace pnc::variation {

/// Temporal component drift (aging) — the paper's "temporal fluctuations"
/// of printed components (Sec. I): printed resistors and capacitors shift
/// over the device lifetime through electrolyte drying, oxidation and
/// mechanical strain.
///
/// The model composes the as-printed process variation p(ε) with a
/// deterministic aging trend plus a stochastic aging spread that both
/// grow with operating time:
///
///   ε(t) = ε_print · (1 + trend · t/t_ref) · N(1, spread · sqrt(t/t_ref))
///
/// `sample_at(age)` draws a factor for a device at the given age. The
/// class also satisfies the VariationModel interface at a fixed
/// evaluation age so it can drop into VariationSpec.
class DriftModel final : public VariationModel {
 public:
  struct Config {
    double trend_per_ref = 0.05;   // mean multiplicative drift at t_ref
    double spread_per_ref = 0.03;  // stochastic spread (sigma) at t_ref
    double reference_age = 1.0;    // t_ref in arbitrary lifetime units
    double evaluation_age = 1.0;   // age used by the VariationModel facade
  };

  DriftModel(std::shared_ptr<const VariationModel> printing, Config config);

  /// Factor for a device of the given age (>= 0).
  double sample_at(double age, util::Rng& rng) const;

  /// VariationModel facade at config.evaluation_age.
  double sample(util::Rng& rng) const override;
  std::unique_ptr<VariationModel> clone() const override;

  const Config& config() const { return config_; }

 private:
  std::shared_ptr<const VariationModel> printing_;
  Config config_;
};

/// Expected accuracy-vs-age sweep helper: builds a VariationSpec whose
/// component model is this drift model evaluated at `age`.
VariationSpec drift_spec(std::shared_ptr<const VariationModel> printing,
                         DriftModel::Config config, double age,
                         int mc_samples = 4);

}  // namespace pnc::variation
