#include "pnc/variation/drift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::variation {

DriftModel::DriftModel(std::shared_ptr<const VariationModel> printing,
                       Config config)
    : printing_(std::move(printing)), config_(config) {
  if (!printing_) {
    throw std::invalid_argument("DriftModel: null printing model");
  }
  if (config_.reference_age <= 0.0) {
    throw std::invalid_argument("DriftModel: reference_age must be > 0");
  }
  if (config_.spread_per_ref < 0.0) {
    throw std::invalid_argument("DriftModel: spread must be >= 0");
  }
  if (config_.evaluation_age < 0.0) {
    throw std::invalid_argument("DriftModel: evaluation_age must be >= 0");
  }
}

double DriftModel::sample_at(double age, util::Rng& rng) const {
  if (age < 0.0) throw std::invalid_argument("DriftModel: age must be >= 0");
  const double printed = printing_->sample(rng);
  const double rel = age / config_.reference_age;
  const double trend = 1.0 + config_.trend_per_ref * rel;
  const double sigma = config_.spread_per_ref * std::sqrt(rel);
  const double stochastic =
      sigma > 0.0 ? std::clamp(rng.normal(1.0, sigma), 0.01, 1.0 + 3.0 * sigma)
                  : 1.0;
  return std::max(printed * trend * stochastic, 0.01);
}

double DriftModel::sample(util::Rng& rng) const {
  return sample_at(config_.evaluation_age, rng);
}

std::unique_ptr<VariationModel> DriftModel::clone() const {
  return std::make_unique<DriftModel>(printing_, config_);
}

VariationSpec drift_spec(std::shared_ptr<const VariationModel> printing,
                         DriftModel::Config config, double age,
                         int mc_samples) {
  config.evaluation_age = age;
  VariationSpec spec;
  spec.component = std::make_shared<DriftModel>(std::move(printing), config);
  spec.monte_carlo_samples = mc_samples;
  return spec;
}

}  // namespace pnc::variation
