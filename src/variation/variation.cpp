#include "pnc/variation/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pnc::variation {

UniformVariation::UniformVariation(double delta) : delta_(delta) {
  if (delta < 0.0 || delta >= 1.0) {
    throw std::invalid_argument("UniformVariation: delta must be in [0, 1)");
  }
}

double UniformVariation::sample(util::Rng& rng) const {
  return rng.uniform(1.0 - delta_, 1.0 + delta_);
}

GaussianVariation::GaussianVariation(double sigma) : sigma_(sigma) {
  if (sigma < 0.0) {
    throw std::invalid_argument("GaussianVariation: sigma must be >= 0");
  }
}

double GaussianVariation::sample(util::Rng& rng) const {
  const double lo = std::max(0.01, 1.0 - 3.0 * sigma_);
  const double hi = 1.0 + 3.0 * sigma_;
  return std::clamp(rng.normal(1.0, sigma_), lo, hi);
}

GaussianMixtureVariation::GaussianMixtureVariation(
    std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("GaussianMixtureVariation: no components");
  }
  double total = 0.0;
  for (const auto& c : components_) {
    if (c.weight <= 0.0 || c.sigma <= 0.0) {
      throw std::invalid_argument(
          "GaussianMixtureVariation: weights and sigmas must be positive");
    }
    total += c.weight;
  }
  for (auto& c : components_) c.weight /= total;
}

double GaussianMixtureVariation::sample(util::Rng& rng) const {
  double u = rng.uniform();
  for (const auto& c : components_) {
    if (u < c.weight || &c == &components_.back()) {
      const double lo = std::max(0.01, c.mean - 3.0 * c.sigma);
      const double hi = c.mean + 3.0 * c.sigma;
      return std::clamp(rng.normal(c.mean, c.sigma), lo, hi);
    }
    u -= c.weight;
  }
  return 1.0;  // unreachable
}

ad::Tensor sample_factors(const VariationModel& model, std::size_t rows,
                          std::size_t cols, util::Rng& rng) {
  ad::Tensor t(rows, cols);
  for (auto& x : t.data()) x = model.sample(rng);
  return t;
}

void apply_variation(ad::Tensor& values, const VariationModel& model,
                     util::Rng& rng) {
  for (auto& x : values.data()) x *= model.sample(rng);
}

VariationSpec VariationSpec::none() {
  VariationSpec spec;
  spec.component = std::make_shared<NoVariation>();
  spec.mu_min = 1.0;
  spec.mu_max = 1.0;
  spec.v0_min = 0.0;
  spec.v0_max = 0.0;
  spec.monte_carlo_samples = 1;
  return spec;
}

VariationSpec VariationSpec::printing(double delta, int mc_samples) {
  VariationSpec spec;
  spec.component = std::make_shared<UniformVariation>(delta);
  spec.monte_carlo_samples = mc_samples;
  return spec;
}

double VariationSpec::sample_mu(util::Rng& rng) const {
  return mu_min == mu_max ? mu_min : rng.uniform(mu_min, mu_max);
}

double VariationSpec::sample_v0(util::Rng& rng) const {
  return v0_min == v0_max ? v0_min : rng.uniform(v0_min, v0_max);
}

}  // namespace pnc::variation
