// Checkpoint serving CLI for the compiled inference runtime: load a
// trained checkpoint, compile it to an infer::Engine, and stream
// predictions for a CSV of series.
//
//   ./pnc_infer --checkpoint ckpt.txt --model adapt --classes 2 --dt 1 \
//       --input test.csv
//
// Input: one series per line, comma- (or whitespace-) separated values;
// every line must have the same length. Output: one line per series,
//   <index>,<predicted class>[,<logit 0>,...]
//
// Flags:
//   --checkpoint PATH   trained parameters (pnc_train / save_parameters)
//   --model KIND        adapt | ptpnc | elman         (default adapt)
//   --classes C         classes the checkpoint was trained for
//   --dt SECONDS        sampling period it was trained for (default 1)
//   --hidden-cap N      hidden-sizing cap used at training (default 9)
//   --input PATH        CSV of series; '-' reads stdin
//   --batch N           rows per forward batch        (default 64)
//   --threads N         batch-sharding threads        (default 1)
//   --variation DELTA   stamp one ±DELTA fabricated circuit per batch
//   --seed S            RNG seed for the variation stamp (default 0)
//   --logits            also print the raw logits

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pnc/infer/engine.hpp"

namespace {

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pnc_infer: " << message << "\n";
  std::exit(1);
}

std::vector<std::vector<double>> read_series_csv(std::istream& is) {
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(is, line)) {
    for (auto& ch : line) {
      if (ch == ',' || ch == ';' || ch == '\t') ch = ' ';
    }
    std::istringstream fields(line);
    std::vector<double> values;
    double v = 0.0;
    while (fields >> v) values.push_back(v);
    if (values.empty()) continue;  // blank line
    if (!rows.empty() && values.size() != rows.front().size()) {
      die("ragged CSV: line " + std::to_string(rows.size() + 1) + " has " +
          std::to_string(values.size()) + " values, expected " +
          std::to_string(rows.front().size()));
    }
    rows.push_back(std::move(values));
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnc;

  std::string checkpoint_path;
  std::string kind = "adapt";
  std::string input_path;
  std::size_t n_classes = 0;
  std::size_t hidden_cap = 9;
  std::size_t batch = 64;
  std::size_t threads = 1;
  double dt = 1.0;
  double variation_delta = 0.0;
  std::uint64_t seed = 0;
  bool print_logits = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--checkpoint") checkpoint_path = value();
    else if (flag == "--model") kind = value();
    else if (flag == "--classes") n_classes = std::stoul(value());
    else if (flag == "--dt") dt = std::stod(value());
    else if (flag == "--hidden-cap") hidden_cap = std::stoul(value());
    else if (flag == "--input") input_path = value();
    else if (flag == "--batch") batch = std::stoul(value());
    else if (flag == "--threads") threads = std::stoul(value());
    else if (flag == "--variation") variation_delta = std::stod(value());
    else if (flag == "--seed") seed = std::stoull(value());
    else if (flag == "--logits") print_logits = true;
    else die("unknown flag " + flag);
  }
  if (checkpoint_path.empty()) die("--checkpoint is required");
  if (input_path.empty()) die("--input is required");
  if (n_classes < 2) die("--classes must be >= 2");
  if (batch == 0) die("--batch must be >= 1");

  infer::Engine engine = [&] {
    try {
      return infer::load_engine(checkpoint_path, kind, n_classes, dt,
                                hidden_cap);
    } catch (const std::exception& e) {
      die(e.what());
    }
  }();

  std::vector<std::vector<double>> series;
  if (input_path == "-") {
    series = read_series_csv(std::cin);
  } else {
    std::ifstream file(input_path);
    if (!file) die("cannot open " + input_path);
    series = read_series_csv(file);
  }
  if (series.empty()) die("no series in " + input_path);

  const variation::VariationSpec spec =
      variation_delta > 0.0 ? variation::VariationSpec::printing(variation_delta)
                            : variation::VariationSpec::none();
  util::Rng rng(seed);
  util::ThreadPool pool(threads);
  infer::Plan plan = engine.make_plan();

  const std::size_t steps = series.front().size();
  std::cout.precision(10);
  for (std::size_t begin = 0; begin < series.size(); begin += batch) {
    const std::size_t rows = std::min(batch, series.size() - begin);
    ad::Tensor inputs = ad::Tensor::uninitialized(rows, steps);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t t = 0; t < steps; ++t) {
        inputs(i, t) = series[begin + i][t];
      }
    }
    // One stamp per batch: every batch is scored on one fabricated
    // circuit (with --variation 0 the stamp is the nominal circuit).
    engine.stamp(plan, spec, rng, rows);
    ad::Tensor logits;
    engine.forward(plan, inputs, logits, pool);
    for (std::size_t i = 0; i < rows; ++i) {
      std::size_t best = 0;
      for (std::size_t j = 1; j < engine.num_classes(); ++j) {
        if (logits(i, j) > logits(i, best)) best = j;
      }
      std::cout << (begin + i) << ',' << best;
      if (print_logits) {
        for (std::size_t j = 0; j < engine.num_classes(); ++j) {
          std::cout << ',' << logits(i, j);
        }
      }
      std::cout << '\n';
    }
  }
  return 0;
}
