// Checkpoint serving CLI for the compiled inference runtime: load a
// trained checkpoint, compile it to an infer::Engine, and stream
// predictions for a CSV of series.
//
//   ./pnc_infer --checkpoint ckpt.txt --model adapt --classes 2 --dt 1 \
//       --input test.csv
//
// Input: one series per line, comma- (or whitespace-) separated values;
// every line must have the same length. Output: one line per series,
//   <index>,<predicted class>[,<logit 0>,...]

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pnc/calib/calibrator.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/reliability/campaign.hpp"
#include "pnc/util/digest.hpp"

namespace {

constexpr const char* kUsage = R"(usage: pnc_infer --checkpoint PATH --classes C --input PATH [options]

Serve a trained checkpoint through the compiled inference engine.

required:
  --checkpoint PATH   trained parameters (pnc_train / save_parameters)
  --classes C         classes the checkpoint was trained for (>= 2)
  --input PATH        CSV of series, one per line; '-' reads stdin

options:
  --model KIND        adapt | ptpnc | elman            (default adapt)
  --dt SECONDS        sampling period it was trained for (default 1)
  --hidden-cap N      hidden-sizing cap used at training (default 9)
  --batch N           rows per forward batch           (default 64)
  --threads N         batch-sharding threads           (default 1)
  --variation DELTA   stamp one +/-DELTA fabricated circuit for the run
  --seed S            RNG seed for variation/noise/faults (default 0)
  --logits            also print the raw logits
  --timing            print requests, wall time and req/s to stderr
  --help, -h          print this message and exit

reliability (pnc::reliability):
  --noise KIND:SIGMA  corrupt the input series before scoring; repeatable.
                      KIND is gaussian (sigma = stddev), impulse
                      (sigma = spike rate), wander (sigma = amplitude) or
                      dropout (sigma = per-series dropout probability)
  --fault-rate P      stamp one random defect mask (stuck conductances,
                      open weights, RC drift, dead sensors) of overall
                      rate P into the engine before serving

calibration (pnc::calib):
  --calibrate CSV     fine-tune the SO-filter RC products of this run's
                      stamped (faulted, drifted) circuit on the series in
                      CSV, then serve the calibrated device
  --calib-labels PATH label per calibration series, one integer per line
                      (required with --calibrate)
  --save-overlay PATH write the fitted overlay checkpoint here
                      (required with --calibrate)
  --calib-iters N     calibration Adam steps           (default 40, >= 1)
  --calib-lr X        calibration learning rate        (default 0.05, > 0)
  --overlay PATH      serve with a previously saved overlay instead; it
                      must match the checkpoint, --seed and the
                      fault/variation flags it was calibrated under
                      (mutually exclusive with --calibrate)
)";

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pnc_infer: " << message << "\n"
            << "try: pnc_infer --help\n";
  std::exit(1);
}

double parse_double(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    die("invalid number '" + text + "' for " + flag);
  }
}

std::size_t parse_size(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    die("invalid non-negative integer '" + text + "' for " + flag);
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    die("invalid non-negative integer '" + text + "' for " + flag);
  }
}

/// `--noise kind:sigma` -> the matching NoiseSpec field.
void parse_noise(const std::string& arg, pnc::reliability::NoiseSpec& spec) {
  const std::size_t colon = arg.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == arg.size()) {
    die("--noise wants KIND:SIGMA, got '" + arg + "'");
  }
  const std::string kind = arg.substr(0, colon);
  const double sigma = parse_double("--noise", arg.substr(colon + 1));
  if (sigma < 0.0) die("--noise " + kind + " wants a non-negative value");
  if (kind == "gaussian") {
    spec.gaussian_sigma = sigma;
  } else if (kind == "impulse") {
    spec.impulse_rate = sigma;
  } else if (kind == "wander") {
    spec.wander_amplitude = sigma;
  } else if (kind == "dropout") {
    spec.dropout_rate = sigma;
  } else {
    die("unknown noise kind '" + kind +
        "' (want gaussian | impulse | wander | dropout)");
  }
}

std::vector<std::vector<double>> read_series_csv(std::istream& is) {
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(is, line)) {
    for (auto& ch : line) {
      if (ch == ',' || ch == ';' || ch == '\t') ch = ' ';
    }
    std::istringstream fields(line);
    std::vector<double> values;
    double v = 0.0;
    while (fields >> v) values.push_back(v);
    if (values.empty()) continue;  // blank line
    if (!rows.empty() && values.size() != rows.front().size()) {
      die("ragged CSV: line " + std::to_string(rows.size() + 1) + " has " +
          std::to_string(values.size()) + " values, expected " +
          std::to_string(rows.front().size()));
    }
    rows.push_back(std::move(values));
  }
  return rows;
}

/// One integer label per line; blank lines are skipped, anything else
/// must parse whole.
std::vector<int> read_labels_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) die("cannot open " + path);
  std::vector<int> labels;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(file, line)) {
    ++lineno;
    std::istringstream fields(line);
    long v = 0;
    if (!(fields >> v)) {
      std::string rest;
      if (fields.clear(), fields >> rest) {
        die(path + ":" + std::to_string(lineno) + ": bad label '" + line +
            "'");
      }
      continue;  // blank line
    }
    std::string rest;
    if (fields >> rest) {
      die(path + ":" + std::to_string(lineno) + ": bad label '" + line + "'");
    }
    labels.push_back(static_cast<int>(v));
  }
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnc;

  std::string checkpoint_path;
  std::string kind = "adapt";
  std::string input_path;
  std::size_t n_classes = 0;
  std::size_t hidden_cap = 9;
  std::size_t batch = 64;
  std::size_t threads = 1;
  double dt = 1.0;
  double variation_delta = 0.0;
  double fault_rate = 0.0;
  std::uint64_t seed = 0;
  bool print_logits = false;
  bool print_timing = false;
  reliability::NoiseSpec noise;
  std::string overlay_path;
  std::string calib_path;
  std::string calib_labels_path;
  std::string save_overlay_path;
  std::size_t calib_iters = 40;
  double calib_lr = 0.05;
  bool calib_iters_set = false;
  bool calib_lr_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      return 0;
    }
    else if (flag == "--checkpoint") checkpoint_path = value();
    else if (flag == "--model") kind = value();
    else if (flag == "--classes") n_classes = parse_size(flag, value());
    else if (flag == "--dt") dt = parse_double(flag, value());
    else if (flag == "--hidden-cap") hidden_cap = parse_size(flag, value());
    else if (flag == "--input") input_path = value();
    else if (flag == "--batch") batch = parse_size(flag, value());
    else if (flag == "--threads") threads = parse_size(flag, value());
    else if (flag == "--variation") variation_delta = parse_double(flag, value());
    else if (flag == "--seed") seed = parse_u64(flag, value());
    else if (flag == "--noise") parse_noise(value(), noise);
    else if (flag == "--fault-rate") fault_rate = parse_double(flag, value());
    else if (flag == "--overlay") overlay_path = value();
    else if (flag == "--calibrate") calib_path = value();
    else if (flag == "--calib-labels") calib_labels_path = value();
    else if (flag == "--save-overlay") save_overlay_path = value();
    else if (flag == "--calib-iters") { calib_iters = parse_size(flag, value()); calib_iters_set = true; }
    else if (flag == "--calib-lr") { calib_lr = parse_double(flag, value()); calib_lr_set = true; }
    else if (flag == "--logits") print_logits = true;
    else if (flag == "--timing") print_timing = true;
    else die("unknown flag " + flag);
  }
  if (checkpoint_path.empty()) die("--checkpoint is required");
  if (input_path.empty()) die("--input is required");
  if (n_classes < 2) die("--classes must be >= 2");
  if (batch == 0) die("--batch must be >= 1");
  if (threads == 0) die("--threads must be >= 1");
  if (dt <= 0.0) die("--dt must be > 0");
  if (variation_delta < 0.0) die("--variation must be >= 0");
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    die("--fault-rate must be in [0, 1]");
  }
  if (!overlay_path.empty() && !calib_path.empty()) {
    die("--overlay and --calibrate are mutually exclusive (calibrating "
        "writes a fresh overlay)");
  }
  if (!calib_path.empty()) {
    if (calib_labels_path.empty()) die("--calibrate requires --calib-labels");
    if (save_overlay_path.empty()) die("--calibrate requires --save-overlay");
    if (calib_iters == 0) die("--calib-iters must be >= 1");
    if (calib_lr <= 0.0) die("--calib-lr must be > 0");
  } else {
    if (!calib_labels_path.empty()) die("--calib-labels requires --calibrate");
    if (!save_overlay_path.empty()) die("--save-overlay requires --calibrate");
    if (calib_iters_set) die("--calib-iters requires --calibrate");
    if (calib_lr_set) die("--calib-lr requires --calibrate");
  }

  infer::Engine engine = [&] {
    try {
      return infer::load_engine(checkpoint_path, kind, n_classes, dt,
                                hidden_cap);
    } catch (const std::exception& e) {
      die(e.what());
    }
  }();

  std::vector<std::vector<double>> series;
  if (input_path == "-") {
    series = read_series_csv(std::cin);
  } else {
    std::ifstream file(input_path);
    if (!file) die("cannot open " + input_path);
    series = read_series_csv(file);
  }
  if (series.empty()) die("no series in " + input_path);

  // One defect mask for the whole run: the served engine behaves like a
  // single physical (defective) circuit, not a fresh one per batch.
  reliability::FaultMask mask;
  if (fault_rate > 0.0) {
    const reliability::FaultInjector injector(
        reliability::FaultSpec::mixed(fault_rate), seed ^ 0x6661756c74ULL);
    mask = injector.draw(engine);
    reliability::apply_faults(engine, mask);
    std::cerr << "pnc_infer: stamped " << mask.count()
              << " defects (fault rate " << fault_rate << ", seed " << seed
              << ")\n";
  }

  const variation::VariationSpec spec =
      variation_delta > 0.0 ? variation::VariationSpec::printing(variation_delta)
                            : variation::VariationSpec::none();

  if (!overlay_path.empty()) {
    // Serve a previously calibrated device: the overlay must be keyed to
    // this exact circuit — checkpoint bytes, stamp seed, and the same
    // fault/variation conditions it was calibrated under.
    try {
      const calib::Overlay overlay = calib::load_overlay(overlay_path);
      calib::require_overlay_matches(overlay, engine.model_name(),
                                     util::fnv1a64_file(checkpoint_path),
                                     seed);
      if (overlay.fault_rate != fault_rate) {
        die("overlay was calibrated at fault rate " +
            std::to_string(overlay.fault_rate) + ", this run uses " +
            std::to_string(fault_rate));
      }
      if (overlay.variation_delta != variation_delta) {
        die("overlay was calibrated at variation delta " +
            std::to_string(overlay.variation_delta) + ", this run uses " +
            std::to_string(variation_delta));
      }
      calib::apply_overlay(engine, overlay);
      std::cerr << "pnc_infer: applied overlay " << overlay_path << " ("
                << overlay.deltas.size() << " filter stages)\n";
    } catch (const std::exception& e) {
      die(e.what());
    }
  }

  if (!calib_path.empty()) {
    // Per-device calibration: fine-tune the SO-filter RC products of the
    // faulted/drifted circuit stamped above against the calibration set,
    // persist the deltas as an overlay, and serve the calibrated device.
    data::Split calib_set;
    {
      std::ifstream file(calib_path);
      if (!file) die("cannot open " + calib_path);
      const std::vector<std::vector<double>> rows = read_series_csv(file);
      if (rows.empty()) die("no series in " + calib_path);
      calib_set.inputs = ad::Tensor(rows.size(), rows.front().size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t t = 0; t < rows[i].size(); ++t) {
          calib_set.inputs(i, t) = rows[i][t];
        }
      }
    }
    calib_set.labels = read_labels_file(calib_labels_path);
    if (calib_set.labels.size() != calib_set.inputs.rows()) {
      die(calib_labels_path + " has " +
          std::to_string(calib_set.labels.size()) + " labels for " +
          std::to_string(calib_set.inputs.rows()) + " calibration series");
    }
    try {
      calib::Device device(engine, spec, seed);
      calib::CalibConfig calib_config;
      calib_config.iterations = static_cast<int>(calib_iters);
      calib_config.learning_rate = calib_lr;
      calib_config.threads = threads;
      const calib::CalibResult result =
          calib::calibrate(device, calib_set, calib_config);
      calib::Overlay overlay = result.overlay;
      overlay.base_digest = util::fnv1a64_file(checkpoint_path);
      overlay.fault_seed = fault_rate > 0.0 ? (seed ^ 0x6661756c74ULL) : 0;
      overlay.fault_rate = fault_rate;
      overlay.variation_delta = variation_delta;
      calib::save_overlay(overlay, save_overlay_path);
      std::cerr << "pnc_infer: calibrated " << device.directions()
                << " filter directions in " << result.iterations_run
                << " iterations\n"
                << "pnc_infer: calibration loss " << result.initial_loss
                << " -> " << result.final_loss << ", accuracy "
                << result.initial_accuracy << " -> " << result.final_accuracy
                << "\n"
                << "pnc_infer: overlay saved to " << save_overlay_path
                << "\n";
      calib::apply_overlay(engine, overlay);
    } catch (const std::exception& e) {
      die(e.what());
    }
  }

  util::Rng rng(seed);
  util::ThreadPool pool(threads);
  infer::Plan plan = engine.make_plan();
  // One stamp for the whole run, drawn at batch 1 and broadcast to each
  // batch's row count: the served engine behaves like a single fabricated
  // circuit (with --variation 0 the stamp is the nominal circuit), and the
  // stamped tensors are reused across batches instead of being redrawn.
  engine.stamp(plan, spec, rng, 1);

  const std::size_t steps = series.front().size();
  std::cout.precision(10);
  const auto serve_start = std::chrono::steady_clock::now();
  for (std::size_t begin = 0; begin < series.size(); begin += batch) {
    const std::size_t rows = std::min(batch, series.size() - begin);
    ad::Tensor inputs = ad::Tensor::uninitialized(rows, steps);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t t = 0; t < steps; ++t) {
        inputs(i, t) = series[begin + i][t];
      }
    }
    if (noise.any()) {
      // Mix the batch offset into the stream so corruption differs
      // across batches, not just across rows within one batch.
      inputs = reliability::corrupt_inputs(
          inputs, noise, seed ^ (0xc2b2ae3d27d4eb4fULL * (begin + 1)));
    }
    inputs = reliability::apply_sensor_faults(inputs, mask);
    engine.broadcast_batch(plan, rows);
    ad::Tensor logits;
    engine.forward(plan, inputs, logits, pool);
    for (std::size_t i = 0; i < rows; ++i) {
      std::size_t best = 0;
      for (std::size_t j = 1; j < engine.num_classes(); ++j) {
        if (logits(i, j) > logits(i, best)) best = j;
      }
      std::cout << (begin + i) << ',' << best;
      if (print_logits) {
        for (std::size_t j = 0; j < engine.num_classes(); ++j) {
          std::cout << ',' << logits(i, j);
        }
      }
      std::cout << '\n';
    }
  }
  if (print_timing) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      serve_start)
            .count();
    std::cerr << "pnc_infer: " << series.size() << " requests in " << wall
              << " s (" << (wall > 0.0 ? series.size() / wall : 0.0)
              << " req/s)\n";
  }
  return 0;
}
