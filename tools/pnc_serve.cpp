// Persistent serving front-end for pnc::serve: load a checkpoint, start
// the in-process server, and speak an NDJSON protocol (one JSON object
// per line) over stdin/stdout (--stdio, the default) or an AF_UNIX
// stream socket (--socket PATH).
//
//   ./pnc_serve --checkpoint ckpt.txt --model adapt --classes 2 --dt 1
//
// Requests:
//   {"op":"infer","id":7,"series":[0.1,0.2,...]}        -> one response line
//   {"op":"reload","checkpoint":"new.txt"}              -> swap "default"
//   {"op":"stats"}                                      -> counter snapshot
//
// Responses carry "status": "ok" | "shed" | "error". Shedding is the
// admission control: a full queue rejects instead of queueing unbounded
// work. EOF on stdin (or on a socket connection) drains in-flight
// requests before exiting, so every admitted request is answered.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pnc/calib/overlay.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/serve/json.hpp"
#include "pnc/serve/server.hpp"
#include "pnc/util/digest.hpp"
#include "pnc/util/failpoint.hpp"

namespace {

using pnc::serve::JsonValue;
using pnc::serve::Request;
using pnc::serve::Response;
using pnc::serve::ServerStats;
using pnc::serve::Status;

constexpr const char* kUsage = R"(usage: pnc_serve --checkpoint PATH --classes C [options]

Serve a trained checkpoint over an NDJSON request protocol.

required:
  --checkpoint PATH   trained parameters, registered as model "default"
  --classes C         classes the checkpoint was trained for (>= 2)

model options:
  --model KIND        adapt | ptpnc | elman            (default adapt)
  --dt SECONDS        sampling period it was trained for (default 1)
  --hidden-cap N      hidden-sizing cap used at training (default 9)
  --variation DELTA   serve one +/-DELTA fabricated circuit (default clean)
  --seed S            variation stamp seed             (default 0)
  --overlay NAME=PATH register the calibration overlay at PATH under NAME
                      (repeatable; requests select it with "overlay":NAME;
                      must match the checkpoint, family and --seed)

server options:
  --shards N          worker threads                   (default 1)
  --max-batch N       dynamic batch cap                (default 16)
  --deadline-us U     coalescing deadline, microseconds (default 200)
  --queue-capacity N  admission threshold              (default 1024)
  --overlay-capacity N registered-overlay LRU bound    (default 256)
  --watchdog-ms M     replace a shard hung on one batch for > M ms
                      (default 0 = watchdog off)
  --max-line-bytes N  longest accepted request line    (default 1048576)
  --logits            include raw logits in responses
  --stdio             serve stdin/stdout               (default)
  --socket PATH       serve an AF_UNIX stream socket at PATH
  --help, -h          print this message and exit

protocol (one JSON object per line):
  {"op":"infer","id":N,"series":[...]}       classify one series
    optional "overlay":NAME                  serve a calibrated device
    optional "priority":"interactive"|"batch"|"best_effort"
    optional "deadline_us":U                 shed if still queued past U
  {"op":"session","name":N,"window":W}       open a streaming session
    optional "stride":S                      window hop (default W)
    optional "carry":true|false              carry state across windows
                                             (default true; false replays
                                             each window from reset)
    optional "confirm":K                     windows to confirm an event
    optional "model":ID, "overlay":NAME      pinned for the session's life
  {"op":"session","name":N,"close":true}     close it; returns totals
  {"op":"chunk","session":N,"id":I,"series":[...]}
                                             append samples to a session;
                                             response carries the windows
                                             classified and events detected
  {"op":"reload","checkpoint":PATH}          hot-swap the "default" model
  {"op":"stats"}                             server counters
  {"op":"health"}                            readiness probe
)";

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pnc_serve: " << message << "\n"
            << "try: pnc_serve --help\n";
  std::exit(1);
}

double parse_double(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    die("invalid number '" + text + "' for " + flag);
  }
}

std::size_t parse_size(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    die("invalid non-negative integer '" + text + "' for " + flag);
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    die("invalid non-negative integer '" + text + "' for " + flag);
  }
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Serialized, mutex-guarded line sink. Responses arrive from worker
/// shard threads concurrently; one mutex keeps lines whole.
class LineWriter {
 public:
  virtual ~LineWriter() = default;
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    emit(line);
  }

 private:
  virtual void emit(const std::string& line) = 0;
  std::mutex mutex_;
};

class StdoutWriter final : public LineWriter {
 private:
  void emit(const std::string& line) override {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
};

class FdWriter final : public LineWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}

 private:
  void emit(const std::string& line) override {
    std::string framed = line + "\n";
    const char* data = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
      // Chaos: force a 1-byte write so the retry loop below is exercised
      // the way a slow client exercises it (armed under PNC_CHAOS only).
      const std::size_t chunk =
          PNC_FAILPOINT_FIRE("serve.socket_write") ? 1 : left;
      const ssize_t n = ::write(fd_, data, chunk);
      if (n < 0) {
        if (errno == EINTR) continue;  // signal mid-write: retry, don't
        return;                        // corrupt the line; else peer gone
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  int fd_;
};

std::string response_to_json(const Response& resp, bool with_logits) {
  std::ostringstream out;
  out << "{\"id\":" << resp.id << ",\"status\":\""
      << pnc::serve::status_name(resp.status) << "\"";
  if (resp.status == Status::kOk) {
    out << ",\"predicted\":" << resp.predicted
        << ",\"generation\":" << resp.generation
        << ",\"batch_rows\":" << resp.batch_rows
        << ",\"queue_us\":" << fmt_double(resp.queue_seconds * 1e6)
        << ",\"total_us\":" << fmt_double(resp.total_seconds * 1e6);
    if (with_logits) {
      out << ",\"logits\":[";
      for (std::size_t i = 0; i < resp.logits.size(); ++i) {
        if (i > 0) out << ',';
        out << fmt_double(resp.logits[i]);
      }
      out << ']';
    }
    if (resp.session_samples > 0) {  // session chunk: windowed results
      out << ",\"session_samples\":" << resp.session_samples
          << ",\"windows\":[";
      for (std::size_t i = 0; i < resp.windows.size(); ++i) {
        const auto& w = resp.windows[i];
        if (i > 0) out << ',';
        out << "{\"begin\":" << w.begin << ",\"end\":" << w.end
            << ",\"predicted\":" << w.predicted;
        if (with_logits) {
          out << ",\"logits\":[";
          for (std::size_t j = 0; j < w.logits.size(); ++j) {
            if (j > 0) out << ',';
            out << fmt_double(w.logits[j]);
          }
          out << ']';
        }
        out << '}';
      }
      out << "],\"events\":[";
      for (std::size_t i = 0; i < resp.events.size(); ++i) {
        if (i > 0) out << ',';
        out << "{\"at\":" << resp.events[i].at
            << ",\"class\":" << resp.events[i].klass << '}';
      }
      out << ']';
    }
  } else {
    out << ",\"error\":\"" << pnc::serve::json_escape(resp.error) << "\"";
  }
  out << "}";
  return out.str();
}

std::string stats_to_json(const ServerStats& s) {
  std::ostringstream out;
  out << "{\"op\":\"stats\",\"submitted\":" << s.submitted
      << ",\"completed\":" << s.completed << ",\"shed\":" << s.shed
      << ",\"deadline_expired\":" << s.deadline_expired
      << ",\"errors\":" << s.errors << ",\"batches\":" << s.batches
      << ",\"reloads\":" << s.reloads
      << ",\"worker_restarts\":" << s.worker_restarts
      << ",\"plan_cache_hits\":" << s.plan_cache_hits
      << ",\"plan_cache_misses\":" << s.plan_cache_misses
      << ",\"plan_cache_evictions\":" << s.plan_cache_evictions
      << ",\"overlay_evictions\":" << s.overlay_evictions
      << ",\"sessions_opened\":" << s.sessions_opened
      << ",\"sessions_closed\":" << s.sessions_closed
      << ",\"session_chunks\":" << s.session_chunks
      << ",\"session_windows\":" << s.session_windows
      << ",\"session_events\":" << s.session_events;
  for (std::size_t k = 0; k < pnc::serve::kPriorityClasses; ++k) {
    const char* name =
        pnc::serve::priority_name(static_cast<pnc::serve::Priority>(k));
    out << ",\"served_" << name << "\":" << s.served_by_class[k]
        << ",\"shed_" << name << "\":" << s.shed_by_class[k]
        << ",\"deadline_" << name << "\":" << s.deadline_by_class[k];
  }
  out << ",\"batch_histogram\":[";
  for (std::size_t i = 0; i < s.batch_histogram.size(); ++i) {
    if (i > 0) out << ',';
    out << s.batch_histogram[i];
  }
  out << "]}";
  return out.str();
}

std::string error_line(const std::string& message) {
  return "{\"status\":\"error\",\"error\":\"" +
         pnc::serve::json_escape(message) + "\"}";
}

/// Immutable checkpoint-compilation settings shared by the initial load
/// and every reload op.
struct ModelRecipe {
  std::string kind = "adapt";
  std::size_t n_classes = 0;
  std::size_t hidden_cap = 9;
  double dt = 1.0;
  pnc::variation::VariationSpec variation =
      pnc::variation::VariationSpec::none();
  std::uint64_t variation_seed = 0;
};

pnc::serve::ModelConfig build_model(const ModelRecipe& recipe,
                                    const std::string& checkpoint_path) {
  pnc::serve::ModelConfig config;
  config.engine = std::make_shared<pnc::infer::Engine>(pnc::infer::load_engine(
      checkpoint_path, recipe.kind, recipe.n_classes, recipe.dt,
      recipe.hidden_cap));
  config.checkpoint_digest = pnc::util::fnv1a64_file(checkpoint_path);
  config.variation = recipe.variation;
  config.variation_seed = recipe.variation_seed;
  return config;
}

/// Handle one protocol line. Infer responses are written asynchronously
/// by the submit callback; everything else is written before returning.
void handle_line(pnc::serve::Server& server, const ModelRecipe& recipe,
                 const std::string& line,
                 const std::shared_ptr<LineWriter>& writer,
                 bool with_logits) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const std::exception& error) {
    writer->write_line(error_line(error.what()));
    return;
  }
  const std::string op = doc.string_or("op", "infer");

  if (op == "infer") {
    Request req;
    req.id = static_cast<std::uint64_t>(doc.number_or("id", 0.0));
    req.model = doc.string_or("model", "default");
    req.overlay = doc.string_or("overlay", "");
    const std::string priority = doc.string_or("priority", "interactive");
    if (!pnc::serve::parse_priority(priority, req.priority)) {
      writer->write_line(error_line("unknown priority '" + priority + "'"));
      return;
    }
    req.deadline_us = doc.number_or("deadline_us", 0.0);
    if (req.deadline_us < 0.0) {
      writer->write_line(error_line("deadline_us must be >= 0"));
      return;
    }
    const JsonValue* series = doc.find("series");
    if (series != nullptr) {
      try {
        const std::vector<JsonValue>& values = series->as_array();
        req.series.reserve(values.size());
        for (const JsonValue& v : values) req.series.push_back(v.as_number());
      } catch (const std::exception& error) {
        writer->write_line(error_line(error.what()));
        return;
      }
    }
    server.submit(std::move(req), [writer, with_logits](Response resp) {
      writer->write_line(response_to_json(resp, with_logits));
    });
    return;
  }

  if (op == "session") {
    const std::string name = doc.string_or("name", "");
    if (name.empty()) {
      writer->write_line(error_line("session: missing name"));
      return;
    }
    bool close = false;
    if (const JsonValue* c = doc.find("close")) {
      try {
        close = c->as_bool();
      } catch (const std::exception& error) {
        writer->write_line(error_line(error.what()));
        return;
      }
    }
    if (close) {
      pnc::serve::SessionInfo info;
      std::string error;
      if (server.close_session(name, &info, &error) != Status::kOk) {
        writer->write_line(error_line("session: " + error));
        return;
      }
      std::ostringstream out;
      out << "{\"op\":\"session\",\"status\":\"ok\",\"name\":\""
          << pnc::serve::json_escape(name)
          << "\",\"closed\":true,\"generation\":" << info.generation
          << ",\"samples\":" << info.samples
          << ",\"windows\":" << info.windows << ",\"events\":" << info.events
          << "}";
      writer->write_line(out.str());
      return;
    }
    pnc::serve::SessionConfig config;
    config.model = doc.string_or("model", "default");
    config.overlay = doc.string_or("overlay", "");
    const double window = doc.number_or("window", 64.0);
    if (window < 1.0) {
      writer->write_line(error_line("session: window must be >= 1"));
      return;
    }
    config.stream.window = static_cast<std::size_t>(window);
    const double stride = doc.number_or("stride", window);
    if (stride < 1.0 || stride > window) {
      writer->write_line(error_line("session: stride must be in [1, window]"));
      return;
    }
    config.stream.stride = static_cast<std::size_t>(stride);
    const double confirm = doc.number_or("confirm", 2.0);
    if (confirm < 1.0) {
      writer->write_line(error_line("session: confirm must be >= 1"));
      return;
    }
    config.stream.confirm_windows = static_cast<std::size_t>(confirm);
    bool carry = true;
    if (const JsonValue* c = doc.find("carry")) {
      try {
        carry = c->as_bool();
      } catch (const std::exception& error) {
        writer->write_line(error_line(error.what()));
        return;
      }
    }
    config.stream.policy = carry ? pnc::stream::StatePolicy::kCarry
                                 : pnc::stream::StatePolicy::kReset;
    std::string error;
    if (server.open_session(name, config, &error) != Status::kOk) {
      writer->write_line(error_line("session: " + error));
      return;
    }
    std::ostringstream out;
    out << "{\"op\":\"session\",\"status\":\"ok\",\"name\":\""
        << pnc::serve::json_escape(name) << "\",\"window\":"
        << config.stream.window << ",\"stride\":" << config.stream.stride
        << ",\"carry\":" << (carry ? "true" : "false") << "}";
    writer->write_line(out.str());
    return;
  }

  if (op == "chunk") {
    Request req;
    req.id = static_cast<std::uint64_t>(doc.number_or("id", 0.0));
    req.session = doc.string_or("session", "");
    if (req.session.empty()) {
      writer->write_line(error_line("chunk: missing session"));
      return;
    }
    const JsonValue* series = doc.find("series");
    if (series != nullptr) {
      try {
        const std::vector<JsonValue>& values = series->as_array();
        req.series.reserve(values.size());
        for (const JsonValue& v : values) req.series.push_back(v.as_number());
      } catch (const std::exception& error) {
        writer->write_line(error_line(error.what()));
        return;
      }
    }
    server.submit(std::move(req), [writer, with_logits](Response resp) {
      writer->write_line(response_to_json(resp, with_logits));
    });
    return;
  }

  if (op == "reload") {
    const std::string checkpoint = doc.string_or("checkpoint", "");
    const std::string model_id = doc.string_or("model", "default");
    if (checkpoint.empty()) {
      writer->write_line(error_line("reload: missing checkpoint"));
      return;
    }
    try {
      pnc::serve::ModelConfig config = build_model(recipe, checkpoint);
      const std::uint64_t digest = config.checkpoint_digest;
      const std::uint64_t generation =
          server.load_model(model_id, std::move(config));
      std::ostringstream out;
      out << "{\"op\":\"reload\",\"status\":\"ok\",\"model\":\""
          << pnc::serve::json_escape(model_id)
          << "\",\"generation\":" << generation << ",\"digest\":" << digest
          << "}";
      writer->write_line(out.str());
    } catch (const std::exception& error) {
      writer->write_line(error_line(std::string("reload: ") + error.what()));
    }
    return;
  }

  if (op == "stats") {
    writer->write_line(stats_to_json(server.stats()));
    return;
  }

  if (op == "health") {
    const pnc::serve::Health health = server.health();
    std::ostringstream out;
    out << "{\"op\":\"health\",\"health\":\""
        << pnc::serve::health_name(health) << "\",\"ready\":"
        << (server.ready() ? "true" : "false") << "}";
    writer->write_line(out.str());
    return;
  }

  writer->write_line(error_line(
      "unknown op '" + op +
      "' (valid: infer, session, chunk, reload, stats, health)"));
}

/// A line the front-end refuses to parse (too long for the configured
/// cap). Answered per-line instead of killing the server: one abusive or
/// broken client must not take down everyone else's session.
std::string oversized_line_error(std::size_t got, std::size_t cap) {
  std::ostringstream out;
  out << "line too long (" << got << " > " << cap << " bytes)";
  return error_line(out.str());
}

void serve_stdio(pnc::serve::Server& server, const ModelRecipe& recipe,
                 bool with_logits, std::size_t max_line_bytes) {
  auto writer = std::make_shared<StdoutWriter>();
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line.size() > max_line_bytes) {
      writer->write_line(oversized_line_error(line.size(), max_line_bytes));
      continue;
    }
    handle_line(server, recipe, line, writer, with_logits);
  }
  server.stop();  // drain in-flight requests; callbacks flush before exit
}

void serve_connection(pnc::serve::Server& server, const ModelRecipe& recipe,
                      int fd, bool with_logits, std::size_t max_line_bytes) {
  auto writer = std::make_shared<FdWriter>(fd);
  std::string buffer;
  char chunk[4096];
  // When a line overruns the cap we answer once, then discard bytes until
  // the next newline so the stream re-synchronizes on the client's next
  // request instead of ballooning the buffer.
  bool discarding = false;
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (discarding) {  // tail of an already-reported oversized line
        discarding = false;
        continue;
      }
      if (line.size() > max_line_bytes) {
        writer->write_line(oversized_line_error(line.size(), max_line_bytes));
        continue;
      }
      if (!line.empty()) handle_line(server, recipe, line, writer, with_logits);
    }
    buffer.erase(0, start);
    if (!discarding && buffer.size() > max_line_bytes) {
      writer->write_line(oversized_line_error(buffer.size(), max_line_bytes));
      buffer.clear();
      discarding = true;
    }
  }
  ::close(fd);
}

int serve_socket(pnc::serve::Server& server, const ModelRecipe& recipe,
                 const std::string& path, bool with_logits,
                 std::size_t max_line_bytes) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) die("socket: " + std::string(std::strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) die("socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    die("bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(listener, 16) != 0) {
    die("listen: " + std::string(std::strerror(errno)));
  }
  std::cerr << "pnc_serve: listening on " << path << "\n";
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::thread(
        [&server, &recipe, fd, with_logits, max_line_bytes] {
          serve_connection(server, recipe, fd, with_logits, max_line_bytes);
        })
        .detach();
  }
  ::close(listener);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnc;

  std::string checkpoint_path;
  std::string socket_path;
  ModelRecipe recipe;
  serve::ServerConfig config;
  double variation_delta = 0.0;
  bool with_logits = false;
  std::size_t max_line_bytes = 1 << 20;
  std::vector<std::pair<std::string, std::string>> overlay_specs;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      return 0;
    }
    else if (flag == "--checkpoint") checkpoint_path = value();
    else if (flag == "--model") recipe.kind = value();
    else if (flag == "--classes") recipe.n_classes = parse_size(flag, value());
    else if (flag == "--dt") recipe.dt = parse_double(flag, value());
    else if (flag == "--hidden-cap") recipe.hidden_cap = parse_size(flag, value());
    else if (flag == "--variation") variation_delta = parse_double(flag, value());
    else if (flag == "--seed") recipe.variation_seed = parse_u64(flag, value());
    else if (flag == "--overlay") {
      const std::string spec = value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        die("--overlay wants NAME=PATH, got '" + spec + "'");
      }
      overlay_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    }
    else if (flag == "--shards") config.shards = parse_size(flag, value());
    else if (flag == "--max-batch") config.max_batch = parse_size(flag, value());
    else if (flag == "--deadline-us") config.batch_deadline_us = parse_double(flag, value());
    else if (flag == "--queue-capacity") config.queue_capacity = parse_size(flag, value());
    else if (flag == "--overlay-capacity") config.overlay_capacity = parse_size(flag, value());
    else if (flag == "--watchdog-ms") config.watchdog_budget_ms = parse_double(flag, value());
    else if (flag == "--max-line-bytes") max_line_bytes = parse_size(flag, value());
    else if (flag == "--logits") with_logits = true;
    else if (flag == "--stdio") socket_path.clear();
    else if (flag == "--socket") socket_path = value();
    else die("unknown flag " + flag);
  }
  if (checkpoint_path.empty()) die("--checkpoint is required");
  if (recipe.n_classes < 2) die("--classes must be >= 2");
  if (recipe.dt <= 0.0) die("--dt must be > 0");
  if (config.shards == 0) die("--shards must be >= 1");
  if (config.max_batch == 0) die("--max-batch must be >= 1");
  if (config.queue_capacity == 0) die("--queue-capacity must be >= 1");
  if (config.batch_deadline_us < 0.0) die("--deadline-us must be >= 0");
  if (config.watchdog_budget_ms < 0.0) die("--watchdog-ms must be >= 0");
  if (config.overlay_capacity == 0) die("--overlay-capacity must be >= 1");
  if (max_line_bytes == 0) die("--max-line-bytes must be >= 1");
  if (variation_delta < 0.0) die("--variation must be >= 0");
  if (variation_delta > 0.0) {
    recipe.variation = variation::VariationSpec::printing(variation_delta);
  }

#if defined(PNC_CHAOS)
  // Chaos builds only: arm fail points from the environment so an
  // external harness can fault-inject a real pnc_serve process, e.g.
  //   PNC_CHAOS_SPEC='serve.socket_write=fire:0.2;serve.batch_forward=throw:0.05'
  if (const char* chaos = std::getenv("PNC_CHAOS_SPEC")) {
    try {
      util::FailPoints::arm_from_spec(chaos);
      std::cerr << "pnc_serve: chaos fail points armed: " << chaos << "\n";
    } catch (const std::exception& error) {
      die(std::string("PNC_CHAOS_SPEC: ") + error.what());
    }
  }
#endif

  serve::Server server(config);
  try {
    serve::ModelConfig model = build_model(recipe, checkpoint_path);
    const std::string family = model.engine->model_name();
    const std::uint64_t digest = model.checkpoint_digest;
    server.load_model("default", std::move(model));
    for (const auto& [name, path] : overlay_specs) {
      // Fail fast on a mis-keyed overlay instead of erroring per request.
      calib::Overlay overlay = calib::load_overlay(path);
      calib::require_overlay_matches(overlay, family, digest,
                                     recipe.variation_seed);
      server.register_overlay(name, std::move(overlay));
      std::cerr << "pnc_serve: overlay '" << name << "' <- " << path << "\n";
    }
  } catch (const std::exception& error) {
    die(error.what());
  }
  server.start();

  if (!socket_path.empty()) {
    return serve_socket(server, recipe, socket_path, with_logits,
                        max_line_bytes);
  }
  serve_stdio(server, recipe, with_logits, max_line_bytes);
  return 0;
}
