// Minimal training front-end: fit one model on a benchmark dataset, save
// the checkpoint, and (optionally) export the test split as a CSV that
// pnc_infer can stream. Small enough for CI smoke jobs:
//
//   ./pnc_train --dataset PowerCons --model adapt --epochs 2 \
//       --checkpoint ckpt.txt --export-csv test.csv

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "pnc/baseline/elman_rnn.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/core/serialize.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/train/trainer.hpp"
#include "pnc/util/table.hpp"

namespace {

constexpr const char* kUsage = R"(usage: pnc_train [options]

Fit one model on a benchmark dataset, save the checkpoint, and
(optionally) export the test split as a CSV that pnc_infer can stream.

options:
  --dataset NAME        benchmark dataset (default PowerCons)
  --model KIND          adapt | ptpnc | elman        (default adapt)
  --epochs N            max training epochs          (default 2)
  --hidden-cap N        cap on the C^2 hidden sizing (default 9, 0 = none)
  --seed S              experiment seed              (default 42)
  --variation DELTA     train-time component variation +/-DELTA (default 0)
  --checkpoint PATH     where to save the trained parameters
  --export-csv PATH     write the test split series (one per line)
  --export-labels PATH  write the matching labels (one per line)
  --help, -h            print this message and exit

fault/noise-aware training (FANT):
  --fault-rate P        each Monte-Carlo sample trains on a circuit with
                        a random defect mask of overall rate P in [0, 1]
  --fault-probability Q fraction of MC samples that draw a defect mask
                        (default 1, requires --fault-rate)
  --noise KIND:SIGMA    corrupt each sample's training batch; repeatable.
                        KIND is gaussian | impulse | wander | dropout

durability (crash-safe resumable runs):
  --snapshot PATH       write a resumable trainer snapshot (parameters +
                        optimizer moments + scheduler + RNG) atomically
                        at every epoch boundary it falls due
  --snapshot-every N    epochs between snapshots (default 1, requires
                        --snapshot)
  --resume              continue a killed run from --snapshot PATH; the
                        final checkpoint is bit-identical to an
                        uninterrupted run with the same flags
)";

[[noreturn]] void die(const std::string& message) {
  std::cerr << "pnc_train: " << message << "\n"
            << "try: pnc_train --help\n";
  std::exit(1);
}

int parse_int(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    die("invalid integer '" + text + "' for " + flag);
  }
}

std::size_t parse_size(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    die("invalid non-negative integer '" + text + "' for " + flag);
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    die("invalid non-negative integer '" + text + "' for " + flag);
  }
}

double parse_double(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    die("invalid number '" + text + "' for " + flag);
  }
}

/// `--noise kind:sigma` -> the matching NoiseSpec field (same grammar as
/// pnc_infer, so a FANT-trained model can be served under the exact
/// corruption it was hardened against).
void parse_noise(const std::string& arg, pnc::reliability::NoiseSpec& spec) {
  const std::size_t colon = arg.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == arg.size()) {
    die("--noise wants KIND:SIGMA, got '" + arg + "'");
  }
  const std::string kind = arg.substr(0, colon);
  const double sigma = parse_double("--noise", arg.substr(colon + 1));
  if (sigma < 0.0) die("--noise " + kind + " wants a non-negative value");
  if (kind == "gaussian") {
    spec.gaussian_sigma = sigma;
  } else if (kind == "impulse") {
    spec.impulse_rate = sigma;
  } else if (kind == "wander") {
    spec.wander_amplitude = sigma;
  } else if (kind == "dropout") {
    spec.dropout_rate = sigma;
  } else {
    die("unknown noise kind '" + kind +
        "' (want gaussian | impulse | wander | dropout)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnc;

  std::string dataset_name = "PowerCons";
  std::string kind = "adapt";
  std::string checkpoint_path;
  std::string csv_path;
  std::string labels_path;
  int epochs = 2;
  std::size_t hidden_cap = 9;
  std::uint64_t seed = 42;
  double variation_delta = 0.0;
  double fault_rate = 0.0;
  double fault_probability = 1.0;
  bool fault_probability_set = false;
  reliability::NoiseSpec noise;
  std::string snapshot_path;
  int snapshot_every = 1;
  bool snapshot_every_set = false;
  bool resume = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      std::cout << kUsage;
      return 0;
    }
    else if (flag == "--dataset") dataset_name = value();
    else if (flag == "--model") kind = value();
    else if (flag == "--epochs") epochs = parse_int(flag, value());
    else if (flag == "--hidden-cap") hidden_cap = parse_size(flag, value());
    else if (flag == "--seed") seed = parse_u64(flag, value());
    else if (flag == "--variation") variation_delta = parse_double(flag, value());
    else if (flag == "--checkpoint") checkpoint_path = value();
    else if (flag == "--export-csv") csv_path = value();
    else if (flag == "--export-labels") labels_path = value();
    else if (flag == "--fault-rate") fault_rate = parse_double(flag, value());
    else if (flag == "--fault-probability") {
      fault_probability = parse_double(flag, value());
      fault_probability_set = true;
    }
    else if (flag == "--noise") parse_noise(value(), noise);
    else if (flag == "--snapshot") snapshot_path = value();
    else if (flag == "--snapshot-every") {
      snapshot_every = parse_int(flag, value());
      snapshot_every_set = true;
    }
    else if (flag == "--resume") resume = true;
    else die("unknown flag " + flag);
  }
  if (epochs < 1) die("--epochs must be >= 1");
  if (variation_delta < 0.0) die("--variation must be >= 0");
  // Mutually dependent flags must be coherent before any work starts.
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    die("--fault-rate must be in [0, 1], got " + std::to_string(fault_rate));
  }
  if (fault_probability < 0.0 || fault_probability > 1.0) {
    die("--fault-probability must be in [0, 1], got " +
        std::to_string(fault_probability));
  }
  if (fault_probability_set && fault_rate == 0.0) {
    die("--fault-probability requires --fault-rate > 0");
  }
  if (resume && snapshot_path.empty()) {
    die("--resume requires --snapshot PATH (the snapshot to resume from)");
  }
  if (snapshot_every_set && snapshot_path.empty()) {
    die("--snapshot-every requires --snapshot PATH");
  }
  if (snapshot_every < 1) die("--snapshot-every must be >= 1");

  const data::Dataset ds = data::make_dataset(dataset_name, seed);
  const auto n_classes = static_cast<std::size_t>(ds.num_classes);

  std::unique_ptr<core::SequenceClassifier> model;
  if (kind == "adapt") {
    model = core::make_adapt_pnc(n_classes, ds.sample_period, seed,
                                 hidden_cap);
  } else if (kind == "ptpnc") {
    model = core::make_baseline_ptpnc(n_classes, ds.sample_period, seed);
  } else if (kind == "elman") {
    model = baseline::make_elman(n_classes, seed, hidden_cap);
  } else {
    die("unknown model kind '" + kind + "' (want adapt | ptpnc | elman)");
  }

  train::TrainConfig config;
  config.max_epochs = epochs;
  config.seed = seed;
  if (variation_delta > 0.0) {
    config.train_variation = variation::VariationSpec::printing(
        variation_delta, 3);
  }
  if (fault_rate > 0.0 || noise.any()) {
    train::FantConfig fant;
    fant.faults = reliability::FaultSpec::mixed(fault_rate);
    fant.fault_probability = fault_probability;
    fant.noise = noise;
    config.fant = fant;
  }
  config.snapshot_path = snapshot_path;
  config.snapshot_every = snapshot_path.empty() ? 0 : snapshot_every;
  config.resume = resume;

  const train::TrainResult result = [&] {
    try {
      return train::train(*model, ds, config);
    } catch (const std::exception& e) {
      die(e.what());
    }
  }();
  if (result.watchdog_recoveries > 0) {
    std::cerr << "pnc_train: divergence watchdog recovered "
              << result.watchdog_recoveries << " time(s)\n";
  }

  util::Rng rng(7);
  const double test_acc = train::evaluate_accuracy(
      *model, ds.test, variation::VariationSpec::none(), rng);
  std::cout << "trained " << model->name() << " on " << ds.name << ": "
            << result.epochs_run << " epochs, "
            << util::format_fixed(result.wall_seconds, 1)
            << " s, test accuracy " << util::format_fixed(test_acc, 3)
            << "\n";

  if (!checkpoint_path.empty()) {
    core::save_parameters(*model, checkpoint_path);
    std::cout << "checkpoint: " << checkpoint_path << "\n"
              << "serve it:   pnc_infer --checkpoint " << checkpoint_path
              << " --model " << kind << " --classes " << n_classes
              << " --dt " << ds.sample_period << " --hidden-cap "
              << hidden_cap << " --input <series.csv>\n";
  }
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) die("cannot open " + csv_path);
    const ad::Tensor& x = ds.test.inputs;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t t = 0; t < x.cols(); ++t) {
        csv << x(i, t) << (t + 1 == x.cols() ? '\n' : ',');
      }
    }
    std::cout << "test series: " << csv_path << " (" << x.rows() << " x "
              << x.cols() << ")\n";
  }
  if (!labels_path.empty()) {
    std::ofstream labels(labels_path);
    if (!labels) die("cannot open " + labels_path);
    for (const int label : ds.test.labels) labels << label << '\n';
  }
  return 0;
}
