# Empty compiler generated dependencies file for bench_aging_drift.
# This may be replaced when dependencies are built.
