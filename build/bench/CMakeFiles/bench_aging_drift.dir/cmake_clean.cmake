file(REMOVE_RECURSE
  "CMakeFiles/bench_aging_drift.dir/bench_aging_drift.cpp.o"
  "CMakeFiles/bench_aging_drift.dir/bench_aging_drift.cpp.o.d"
  "bench_aging_drift"
  "bench_aging_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aging_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
