file(REMOVE_RECURSE
  "CMakeFiles/bench_arch_search.dir/bench_arch_search.cpp.o"
  "CMakeFiles/bench_arch_search.dir/bench_arch_search.cpp.o.d"
  "bench_arch_search"
  "bench_arch_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arch_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
