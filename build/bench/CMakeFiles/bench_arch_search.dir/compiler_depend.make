# Empty compiler generated dependencies file for bench_arch_search.
# This may be replaced when dependencies are built.
