file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_augmentation.dir/bench_fig6_augmentation.cpp.o"
  "CMakeFiles/bench_fig6_augmentation.dir/bench_fig6_augmentation.cpp.o.d"
  "bench_fig6_augmentation"
  "bench_fig6_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
