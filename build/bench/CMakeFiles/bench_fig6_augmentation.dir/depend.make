# Empty dependencies file for bench_fig6_augmentation.
# This may be replaced when dependencies are built.
