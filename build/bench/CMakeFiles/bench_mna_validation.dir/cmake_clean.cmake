file(REMOVE_RECURSE
  "CMakeFiles/bench_mna_validation.dir/bench_mna_validation.cpp.o"
  "CMakeFiles/bench_mna_validation.dir/bench_mna_validation.cpp.o.d"
  "bench_mna_validation"
  "bench_mna_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mna_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
