# Empty dependencies file for bench_mna_validation.
# This may be replaced when dependencies are built.
