# Empty dependencies file for bench_filter_response.
# This may be replaced when dependencies are built.
