file(REMOVE_RECURSE
  "CMakeFiles/bench_filter_response.dir/bench_filter_response.cpp.o"
  "CMakeFiles/bench_filter_response.dir/bench_filter_response.cpp.o.d"
  "bench_filter_response"
  "bench_filter_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
