file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_baseline_collapse.dir/bench_fig5_baseline_collapse.cpp.o"
  "CMakeFiles/bench_fig5_baseline_collapse.dir/bench_fig5_baseline_collapse.cpp.o.d"
  "bench_fig5_baseline_collapse"
  "bench_fig5_baseline_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_baseline_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
