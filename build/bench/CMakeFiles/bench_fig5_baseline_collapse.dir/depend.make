# Empty dependencies file for bench_fig5_baseline_collapse.
# This may be replaced when dependencies are built.
