file(REMOVE_RECURSE
  "CMakeFiles/bench_yield_analysis.dir/bench_yield_analysis.cpp.o"
  "CMakeFiles/bench_yield_analysis.dir/bench_yield_analysis.cpp.o.d"
  "bench_yield_analysis"
  "bench_yield_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yield_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
