# Empty compiler generated dependencies file for bench_yield_analysis.
# This may be replaced when dependencies are built.
