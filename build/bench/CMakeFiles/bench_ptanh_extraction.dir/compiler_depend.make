# Empty compiler generated dependencies file for bench_ptanh_extraction.
# This may be replaced when dependencies are built.
