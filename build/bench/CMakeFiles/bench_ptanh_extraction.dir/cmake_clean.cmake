file(REMOVE_RECURSE
  "CMakeFiles/bench_ptanh_extraction.dir/bench_ptanh_extraction.cpp.o"
  "CMakeFiles/bench_ptanh_extraction.dir/bench_ptanh_extraction.cpp.o.d"
  "bench_ptanh_extraction"
  "bench_ptanh_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ptanh_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
