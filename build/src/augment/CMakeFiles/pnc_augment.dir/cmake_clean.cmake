file(REMOVE_RECURSE
  "CMakeFiles/pnc_augment.dir/augment.cpp.o"
  "CMakeFiles/pnc_augment.dir/augment.cpp.o.d"
  "CMakeFiles/pnc_augment.dir/fft.cpp.o"
  "CMakeFiles/pnc_augment.dir/fft.cpp.o.d"
  "libpnc_augment.a"
  "libpnc_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
