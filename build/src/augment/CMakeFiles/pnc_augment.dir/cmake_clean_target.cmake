file(REMOVE_RECURSE
  "libpnc_augment.a"
)
