# Empty dependencies file for pnc_augment.
# This may be replaced when dependencies are built.
