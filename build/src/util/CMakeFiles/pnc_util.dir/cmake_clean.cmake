file(REMOVE_RECURSE
  "CMakeFiles/pnc_util.dir/logging.cpp.o"
  "CMakeFiles/pnc_util.dir/logging.cpp.o.d"
  "CMakeFiles/pnc_util.dir/rng.cpp.o"
  "CMakeFiles/pnc_util.dir/rng.cpp.o.d"
  "CMakeFiles/pnc_util.dir/stats.cpp.o"
  "CMakeFiles/pnc_util.dir/stats.cpp.o.d"
  "CMakeFiles/pnc_util.dir/table.cpp.o"
  "CMakeFiles/pnc_util.dir/table.cpp.o.d"
  "libpnc_util.a"
  "libpnc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
