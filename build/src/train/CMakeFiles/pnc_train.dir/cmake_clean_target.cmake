file(REMOVE_RECURSE
  "libpnc_train.a"
)
