# Empty dependencies file for pnc_train.
# This may be replaced when dependencies are built.
