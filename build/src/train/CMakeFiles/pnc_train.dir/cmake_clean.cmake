file(REMOVE_RECURSE
  "CMakeFiles/pnc_train.dir/arch_search.cpp.o"
  "CMakeFiles/pnc_train.dir/arch_search.cpp.o.d"
  "CMakeFiles/pnc_train.dir/experiment.cpp.o"
  "CMakeFiles/pnc_train.dir/experiment.cpp.o.d"
  "CMakeFiles/pnc_train.dir/metrics.cpp.o"
  "CMakeFiles/pnc_train.dir/metrics.cpp.o.d"
  "CMakeFiles/pnc_train.dir/optimizer.cpp.o"
  "CMakeFiles/pnc_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/pnc_train.dir/trainer.cpp.o"
  "CMakeFiles/pnc_train.dir/trainer.cpp.o.d"
  "CMakeFiles/pnc_train.dir/tuner.cpp.o"
  "CMakeFiles/pnc_train.dir/tuner.cpp.o.d"
  "libpnc_train.a"
  "libpnc_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
