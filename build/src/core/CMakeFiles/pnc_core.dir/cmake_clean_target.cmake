file(REMOVE_RECURSE
  "libpnc_core.a"
)
