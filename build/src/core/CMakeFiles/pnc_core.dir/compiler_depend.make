# Empty compiler generated dependencies file for pnc_core.
# This may be replaced when dependencies are built.
