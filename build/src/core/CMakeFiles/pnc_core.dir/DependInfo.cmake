
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adapt_pnc.cpp" "src/core/CMakeFiles/pnc_core.dir/adapt_pnc.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/adapt_pnc.cpp.o.d"
  "/root/repo/src/core/crossbar_layer.cpp" "src/core/CMakeFiles/pnc_core.dir/crossbar_layer.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/crossbar_layer.cpp.o.d"
  "/root/repo/src/core/filter_layer.cpp" "src/core/CMakeFiles/pnc_core.dir/filter_layer.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/filter_layer.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/pnc_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/model.cpp.o.d"
  "/root/repo/src/core/ptanh_layer.cpp" "src/core/CMakeFiles/pnc_core.dir/ptanh_layer.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/ptanh_layer.cpp.o.d"
  "/root/repo/src/core/ptpb.cpp" "src/core/CMakeFiles/pnc_core.dir/ptpb.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/ptpb.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/pnc_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/pnc_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/pnc_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pnc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/pnc_variation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
