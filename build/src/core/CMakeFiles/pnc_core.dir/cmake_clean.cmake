file(REMOVE_RECURSE
  "CMakeFiles/pnc_core.dir/adapt_pnc.cpp.o"
  "CMakeFiles/pnc_core.dir/adapt_pnc.cpp.o.d"
  "CMakeFiles/pnc_core.dir/crossbar_layer.cpp.o"
  "CMakeFiles/pnc_core.dir/crossbar_layer.cpp.o.d"
  "CMakeFiles/pnc_core.dir/filter_layer.cpp.o"
  "CMakeFiles/pnc_core.dir/filter_layer.cpp.o.d"
  "CMakeFiles/pnc_core.dir/model.cpp.o"
  "CMakeFiles/pnc_core.dir/model.cpp.o.d"
  "CMakeFiles/pnc_core.dir/ptanh_layer.cpp.o"
  "CMakeFiles/pnc_core.dir/ptanh_layer.cpp.o.d"
  "CMakeFiles/pnc_core.dir/ptpb.cpp.o"
  "CMakeFiles/pnc_core.dir/ptpb.cpp.o.d"
  "CMakeFiles/pnc_core.dir/serialize.cpp.o"
  "CMakeFiles/pnc_core.dir/serialize.cpp.o.d"
  "libpnc_core.a"
  "libpnc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
