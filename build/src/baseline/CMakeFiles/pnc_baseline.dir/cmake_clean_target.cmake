file(REMOVE_RECURSE
  "libpnc_baseline.a"
)
