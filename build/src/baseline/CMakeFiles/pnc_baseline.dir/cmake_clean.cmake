file(REMOVE_RECURSE
  "CMakeFiles/pnc_baseline.dir/elman_rnn.cpp.o"
  "CMakeFiles/pnc_baseline.dir/elman_rnn.cpp.o.d"
  "libpnc_baseline.a"
  "libpnc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
