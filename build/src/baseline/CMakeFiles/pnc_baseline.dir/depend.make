# Empty dependencies file for pnc_baseline.
# This may be replaced when dependencies are built.
