file(REMOVE_RECURSE
  "CMakeFiles/pnc_autodiff.dir/gradcheck.cpp.o"
  "CMakeFiles/pnc_autodiff.dir/gradcheck.cpp.o.d"
  "CMakeFiles/pnc_autodiff.dir/graph.cpp.o"
  "CMakeFiles/pnc_autodiff.dir/graph.cpp.o.d"
  "CMakeFiles/pnc_autodiff.dir/ops.cpp.o"
  "CMakeFiles/pnc_autodiff.dir/ops.cpp.o.d"
  "CMakeFiles/pnc_autodiff.dir/tensor.cpp.o"
  "CMakeFiles/pnc_autodiff.dir/tensor.cpp.o.d"
  "libpnc_autodiff.a"
  "libpnc_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
