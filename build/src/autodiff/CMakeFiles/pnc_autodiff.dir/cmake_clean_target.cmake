file(REMOVE_RECURSE
  "libpnc_autodiff.a"
)
