# Empty compiler generated dependencies file for pnc_autodiff.
# This may be replaced when dependencies are built.
