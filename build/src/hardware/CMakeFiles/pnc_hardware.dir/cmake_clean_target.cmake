file(REMOVE_RECURSE
  "libpnc_hardware.a"
)
