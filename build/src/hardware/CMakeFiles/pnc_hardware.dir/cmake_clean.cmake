file(REMOVE_RECURSE
  "CMakeFiles/pnc_hardware.dir/cost_model.cpp.o"
  "CMakeFiles/pnc_hardware.dir/cost_model.cpp.o.d"
  "CMakeFiles/pnc_hardware.dir/yield.cpp.o"
  "CMakeFiles/pnc_hardware.dir/yield.cpp.o.d"
  "libpnc_hardware.a"
  "libpnc_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
