# Empty compiler generated dependencies file for pnc_hardware.
# This may be replaced when dependencies are built.
