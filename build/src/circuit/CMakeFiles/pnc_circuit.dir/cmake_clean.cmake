file(REMOVE_RECURSE
  "CMakeFiles/pnc_circuit.dir/ac.cpp.o"
  "CMakeFiles/pnc_circuit.dir/ac.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/crossbar.cpp.o"
  "CMakeFiles/pnc_circuit.dir/crossbar.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/device.cpp.o"
  "CMakeFiles/pnc_circuit.dir/device.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/mna.cpp.o"
  "CMakeFiles/pnc_circuit.dir/mna.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/netlists.cpp.o"
  "CMakeFiles/pnc_circuit.dir/netlists.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/nonlinear.cpp.o"
  "CMakeFiles/pnc_circuit.dir/nonlinear.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/ptanh.cpp.o"
  "CMakeFiles/pnc_circuit.dir/ptanh.cpp.o.d"
  "CMakeFiles/pnc_circuit.dir/ptanh_extract.cpp.o"
  "CMakeFiles/pnc_circuit.dir/ptanh_extract.cpp.o.d"
  "libpnc_circuit.a"
  "libpnc_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
