file(REMOVE_RECURSE
  "libpnc_circuit.a"
)
