
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/ac.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/ac.cpp.o.d"
  "/root/repo/src/circuit/crossbar.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/crossbar.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/crossbar.cpp.o.d"
  "/root/repo/src/circuit/device.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/device.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/device.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/mna.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/mna.cpp.o.d"
  "/root/repo/src/circuit/netlists.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/netlists.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/netlists.cpp.o.d"
  "/root/repo/src/circuit/nonlinear.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/nonlinear.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/nonlinear.cpp.o.d"
  "/root/repo/src/circuit/ptanh.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/ptanh.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/ptanh.cpp.o.d"
  "/root/repo/src/circuit/ptanh_extract.cpp" "src/circuit/CMakeFiles/pnc_circuit.dir/ptanh_extract.cpp.o" "gcc" "src/circuit/CMakeFiles/pnc_circuit.dir/ptanh_extract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
