# Empty dependencies file for pnc_circuit.
# This may be replaced when dependencies are built.
