# Empty dependencies file for pnc_data.
# This may be replaced when dependencies are built.
