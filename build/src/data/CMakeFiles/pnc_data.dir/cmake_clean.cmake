file(REMOVE_RECURSE
  "CMakeFiles/pnc_data.dir/dataset.cpp.o"
  "CMakeFiles/pnc_data.dir/dataset.cpp.o.d"
  "CMakeFiles/pnc_data.dir/generators.cpp.o"
  "CMakeFiles/pnc_data.dir/generators.cpp.o.d"
  "CMakeFiles/pnc_data.dir/preprocess.cpp.o"
  "CMakeFiles/pnc_data.dir/preprocess.cpp.o.d"
  "CMakeFiles/pnc_data.dir/signals.cpp.o"
  "CMakeFiles/pnc_data.dir/signals.cpp.o.d"
  "CMakeFiles/pnc_data.dir/ucr_io.cpp.o"
  "CMakeFiles/pnc_data.dir/ucr_io.cpp.o.d"
  "libpnc_data.a"
  "libpnc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
