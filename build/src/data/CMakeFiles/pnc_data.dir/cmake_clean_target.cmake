file(REMOVE_RECURSE
  "libpnc_data.a"
)
