
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/pnc_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/pnc_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/data/CMakeFiles/pnc_data.dir/generators.cpp.o" "gcc" "src/data/CMakeFiles/pnc_data.dir/generators.cpp.o.d"
  "/root/repo/src/data/preprocess.cpp" "src/data/CMakeFiles/pnc_data.dir/preprocess.cpp.o" "gcc" "src/data/CMakeFiles/pnc_data.dir/preprocess.cpp.o.d"
  "/root/repo/src/data/signals.cpp" "src/data/CMakeFiles/pnc_data.dir/signals.cpp.o" "gcc" "src/data/CMakeFiles/pnc_data.dir/signals.cpp.o.d"
  "/root/repo/src/data/ucr_io.cpp" "src/data/CMakeFiles/pnc_data.dir/ucr_io.cpp.o" "gcc" "src/data/CMakeFiles/pnc_data.dir/ucr_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/pnc_autodiff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
