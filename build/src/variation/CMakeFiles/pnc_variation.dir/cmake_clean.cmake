file(REMOVE_RECURSE
  "CMakeFiles/pnc_variation.dir/drift.cpp.o"
  "CMakeFiles/pnc_variation.dir/drift.cpp.o.d"
  "CMakeFiles/pnc_variation.dir/variation.cpp.o"
  "CMakeFiles/pnc_variation.dir/variation.cpp.o.d"
  "libpnc_variation.a"
  "libpnc_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnc_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
