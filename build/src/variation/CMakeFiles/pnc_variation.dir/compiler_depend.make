# Empty compiler generated dependencies file for pnc_variation.
# This may be replaced when dependencies are built.
