
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variation/drift.cpp" "src/variation/CMakeFiles/pnc_variation.dir/drift.cpp.o" "gcc" "src/variation/CMakeFiles/pnc_variation.dir/drift.cpp.o.d"
  "/root/repo/src/variation/variation.cpp" "src/variation/CMakeFiles/pnc_variation.dir/variation.cpp.o" "gcc" "src/variation/CMakeFiles/pnc_variation.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/pnc_autodiff.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
