file(REMOVE_RECURSE
  "libpnc_variation.a"
)
