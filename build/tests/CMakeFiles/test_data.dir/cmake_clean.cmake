file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o"
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_generate_raw.cpp.o"
  "CMakeFiles/test_data.dir/data/test_generate_raw.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_generators.cpp.o"
  "CMakeFiles/test_data.dir/data/test_generators.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_preprocess.cpp.o"
  "CMakeFiles/test_data.dir/data/test_preprocess.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_signals.cpp.o"
  "CMakeFiles/test_data.dir/data/test_signals.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_ucr_io.cpp.o"
  "CMakeFiles/test_data.dir/data/test_ucr_io.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
