file(REMOVE_RECURSE
  "CMakeFiles/test_circuit.dir/circuit/test_ac.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_ac.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_crossbar.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_crossbar.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_device.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_device.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_mna.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_mna.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_netlists.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_netlists.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_nonlinear.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_nonlinear.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_ptanh.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_ptanh.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/test_ptanh_extract.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/test_ptanh_extract.cpp.o.d"
  "test_circuit"
  "test_circuit.pdb"
  "test_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
