file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff.dir/autodiff/test_gradcheck.cpp.o"
  "CMakeFiles/test_autodiff.dir/autodiff/test_gradcheck.cpp.o.d"
  "CMakeFiles/test_autodiff.dir/autodiff/test_graph.cpp.o"
  "CMakeFiles/test_autodiff.dir/autodiff/test_graph.cpp.o.d"
  "CMakeFiles/test_autodiff.dir/autodiff/test_graph_stress.cpp.o"
  "CMakeFiles/test_autodiff.dir/autodiff/test_graph_stress.cpp.o.d"
  "CMakeFiles/test_autodiff.dir/autodiff/test_ops.cpp.o"
  "CMakeFiles/test_autodiff.dir/autodiff/test_ops.cpp.o.d"
  "CMakeFiles/test_autodiff.dir/autodiff/test_ops_properties.cpp.o"
  "CMakeFiles/test_autodiff.dir/autodiff/test_ops_properties.cpp.o.d"
  "CMakeFiles/test_autodiff.dir/autodiff/test_tensor.cpp.o"
  "CMakeFiles/test_autodiff.dir/autodiff/test_tensor.cpp.o.d"
  "test_autodiff"
  "test_autodiff.pdb"
  "test_autodiff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
