# Empty compiler generated dependencies file for test_hardware.
# This may be replaced when dependencies are built.
