file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_adapt_pnc.cpp.o"
  "CMakeFiles/test_core.dir/core/test_adapt_pnc.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_crossbar_layer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_crossbar_layer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_filter_layer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_filter_layer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_filter_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_filter_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ptanh_layer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ptanh_layer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ptpb.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ptpb.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_serialize.cpp.o"
  "CMakeFiles/test_core.dir/core/test_serialize.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
