file(REMOVE_RECURSE
  "CMakeFiles/test_train.dir/train/test_arch_search.cpp.o"
  "CMakeFiles/test_train.dir/train/test_arch_search.cpp.o.d"
  "CMakeFiles/test_train.dir/train/test_experiment.cpp.o"
  "CMakeFiles/test_train.dir/train/test_experiment.cpp.o.d"
  "CMakeFiles/test_train.dir/train/test_metrics.cpp.o"
  "CMakeFiles/test_train.dir/train/test_metrics.cpp.o.d"
  "CMakeFiles/test_train.dir/train/test_optimizer.cpp.o"
  "CMakeFiles/test_train.dir/train/test_optimizer.cpp.o.d"
  "CMakeFiles/test_train.dir/train/test_paper_hidden.cpp.o"
  "CMakeFiles/test_train.dir/train/test_paper_hidden.cpp.o.d"
  "CMakeFiles/test_train.dir/train/test_trainer.cpp.o"
  "CMakeFiles/test_train.dir/train/test_trainer.cpp.o.d"
  "CMakeFiles/test_train.dir/train/test_tuner.cpp.o"
  "CMakeFiles/test_train.dir/train/test_tuner.cpp.o.d"
  "test_train"
  "test_train.pdb"
  "test_train[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
