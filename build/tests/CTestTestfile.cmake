# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_variation[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_augment[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_hardware[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
