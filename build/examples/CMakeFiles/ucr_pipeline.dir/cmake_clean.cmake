file(REMOVE_RECURSE
  "CMakeFiles/ucr_pipeline.dir/ucr_pipeline.cpp.o"
  "CMakeFiles/ucr_pipeline.dir/ucr_pipeline.cpp.o.d"
  "ucr_pipeline"
  "ucr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
