# Empty dependencies file for ucr_pipeline.
# This may be replaced when dependencies are built.
