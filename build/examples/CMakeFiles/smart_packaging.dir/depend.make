# Empty dependencies file for smart_packaging.
# This may be replaced when dependencies are built.
