file(REMOVE_RECURSE
  "CMakeFiles/smart_packaging.dir/smart_packaging.cpp.o"
  "CMakeFiles/smart_packaging.dir/smart_packaging.cpp.o.d"
  "smart_packaging"
  "smart_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
