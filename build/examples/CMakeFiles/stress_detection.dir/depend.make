# Empty dependencies file for stress_detection.
# This may be replaced when dependencies are built.
