file(REMOVE_RECURSE
  "CMakeFiles/stress_detection.dir/stress_detection.cpp.o"
  "CMakeFiles/stress_detection.dir/stress_detection.cpp.o.d"
  "stress_detection"
  "stress_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
