
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/stress_detection.cpp" "examples/CMakeFiles/stress_detection.dir/stress_detection.cpp.o" "gcc" "examples/CMakeFiles/stress_detection.dir/stress_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pnc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/pnc_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pnc_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/variation/CMakeFiles/pnc_variation.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pnc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/pnc_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pnc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/pnc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/pnc_train.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/pnc_hardware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
