// Fig. 7: ablation of the three robustness ingredients — variation-aware
// training (VA), augmented training (AT) and the second-order learnable
// filter (SO-LF) — against the plain baseline and the full combination,
// reporting mean accuracy on clean and on perturbed test data under ±10 %
// component variation.
//
// Every (configuration, dataset) cell is independent, so the whole grid is
// flattened into one job list and fanned out over the process-wide pool;
// the nested training loops run serially inline on their worker.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/util/stats.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

struct Config {
  std::string label;
  core::FilterOrder order;
  bool variation_aware;
  bool augmented;
};

}  // namespace

int main() {
  const std::vector<Config> configs = {
      {"Baseline", core::FilterOrder::kFirst, false, false},
      {"VA", core::FilterOrder::kFirst, true, false},
      {"AT", core::FilterOrder::kFirst, false, true},
      {"SO-LF", core::FilterOrder::kSecond, false, false},
      {"VA+SO-LF+AT", core::FilterOrder::kSecond, true, true},
  };
  const std::vector<std::string> datasets =
      bench::quick_mode()
          ? std::vector<std::string>{"GPMVF", "Slope"}
          : std::vector<std::string>{"CBF", "GPMVF", "PowerCons", "Slope",
                                     "SmoothS", "Symbols"};

  bench::JsonReport report("fig7_ablation");
  const std::size_t cells = configs.size() * datasets.size();
  std::vector<train::ExperimentResult> results(cells);
  std::vector<double> cell_seconds(cells, 0.0);

  util::global_pool().parallel_for(cells, [&](std::size_t job) {
    const Config& config = configs[job / datasets.size()];
    const std::string& name = datasets[job % datasets.size()];
    const auto t0 = std::chrono::steady_clock::now();
    std::cerr << "[fig7] " << config.label << " / " << name << "...\n";
    train::ExperimentSpec spec = train::adapt_spec(name);
    spec.order = config.order;
    spec.variation_aware = config.variation_aware;
    spec.augmented_training = config.augmented;
    bench::apply_scale(spec);
    results[job] = run_experiment(spec);
    cell_seconds[job] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });

  util::Table table({"Configuration", "Clean acc (mean ± std)",
                     "Perturbed acc (mean ± std)", "Δ vs baseline (pp)"});
  double baseline_perturbed = 0.0;

  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<double> clean, perturbed;
    double config_seconds = 0.0;
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      const std::size_t job = c * datasets.size() + d;
      clean.push_back(results[job].clean_accuracy.mean);
      perturbed.push_back(results[job].perturbed_accuracy.mean);
      config_seconds += cell_seconds[job];
    }
    const util::Summary s_clean = util::summarize(clean);
    const util::Summary s_pert = util::summarize(perturbed);
    if (configs[c].label == "Baseline") baseline_perturbed = s_pert.mean;
    table.add_row({configs[c].label,
                   util::format_mean_std(s_clean.mean, s_clean.stddev),
                   util::format_mean_std(s_pert.mean, s_pert.stddev),
                   util::format_fixed(
                       100.0 * (s_pert.mean - baseline_perturbed), 1)});
    report.phase_seconds(configs[c].label, config_seconds);
    report.metric(configs[c].label + "_perturbed_mean", s_pert.mean);
  }

  std::cout << "\nFig. 7 — ablation over training configurations "
            << "(paper: baseline ~58%; VA +10.5, AT +15, SO-LF +25.1, "
               "VA+SO-LF+AT +24.4 points on perturbed data)\n\n";
  table.print(std::cout);
  table.write_csv("fig7_ablation.csv");
  report.write();
  return 0;
}
