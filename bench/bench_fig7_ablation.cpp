// Fig. 7: ablation of the three robustness ingredients — variation-aware
// training (VA), augmented training (AT) and the second-order learnable
// filter (SO-LF) — against the plain baseline and the full combination,
// reporting mean accuracy on clean and on perturbed test data under ±10 %
// component variation.

#include <iostream>

#include "bench_common.hpp"
#include "pnc/util/stats.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

struct Config {
  std::string label;
  core::FilterOrder order;
  bool variation_aware;
  bool augmented;
};

}  // namespace

int main() {
  const std::vector<Config> configs = {
      {"Baseline", core::FilterOrder::kFirst, false, false},
      {"VA", core::FilterOrder::kFirst, true, false},
      {"AT", core::FilterOrder::kFirst, false, true},
      {"SO-LF", core::FilterOrder::kSecond, false, false},
      {"VA+SO-LF+AT", core::FilterOrder::kSecond, true, true},
  };
  const std::vector<std::string> datasets =
      bench::quick_mode()
          ? std::vector<std::string>{"GPMVF", "Slope"}
          : std::vector<std::string>{"CBF", "GPMVF", "PowerCons", "Slope",
                                     "SmoothS", "Symbols"};

  util::Table table({"Configuration", "Clean acc (mean ± std)",
                     "Perturbed acc (mean ± std)", "Δ vs baseline (pp)"});
  double baseline_perturbed = 0.0;

  for (const auto& config : configs) {
    std::vector<double> clean, perturbed;
    for (const auto& name : datasets) {
      std::cerr << "[fig7] " << config.label << " / " << name << "...\n";
      train::ExperimentSpec spec = train::adapt_spec(name);
      spec.order = config.order;
      spec.variation_aware = config.variation_aware;
      spec.augmented_training = config.augmented;
      bench::apply_scale(spec);
      const train::ExperimentResult result = run_experiment(spec);
      clean.push_back(result.clean_accuracy.mean);
      perturbed.push_back(result.perturbed_accuracy.mean);
    }
    const util::Summary s_clean = util::summarize(clean);
    const util::Summary s_pert = util::summarize(perturbed);
    if (config.label == "Baseline") baseline_perturbed = s_pert.mean;
    table.add_row({config.label,
                   util::format_mean_std(s_clean.mean, s_clean.stddev),
                   util::format_mean_std(s_pert.mean, s_pert.stddev),
                   util::format_fixed(
                       100.0 * (s_pert.mean - baseline_perturbed), 1)});
  }

  std::cout << "\nFig. 7 — ablation over training configurations "
            << "(paper: baseline ~58%; VA +10.5, AT +15, SO-LF +25.1, "
               "VA+SO-LF+AT +24.4 points on perturbed data)\n\n";
  table.print(std::cout);
  table.write_csv("fig7_ablation.csv");
  return 0;
}
