// Supporting experiment: the circuit-level facts the paper takes from
// SPICE, regenerated with the in-repo MNA solver.
//
//  1. The crossbar netlist solves to exactly the algebraic weighted-sum
//     model of Eq. (1).
//  2. The coupled first-order filter's coupling factor μ = I_R / I_C stays
//     inside [1, 1.3] across the printable design space (Sec. III-2).
//  3. The backward-Euler MNA transient of an RC stage reproduces the
//     paper's discrete update equation exactly.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/circuit/crossbar.hpp"
#include "pnc/circuit/netlists.hpp"
#include "pnc/util/rng.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;
  using namespace pnc::circuit;

  // ---- 1. crossbar: MNA vs Eq. (1) ---------------------------------------
  util::Rng rng(3);
  double worst = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 8));
    std::vector<double> volts(n), conductances(n);
    for (std::size_t i = 0; i < n; ++i) {
      volts[i] = rng.uniform(-1.0, 1.0);
      conductances[i] = rng.uniform(1e-7, 1e-5);  // 100 kOhm .. 10 MOhm
    }
    const double g_b = rng.uniform(1e-7, 1e-5);
    const double g_d = rng.uniform(1e-7, 1e-5);
    CrossbarColumn col;
    col.conductances = conductances;
    col.signs.assign(n, +1);
    col.bias_conductance = g_b;
    col.pulldown_conductance = g_d;
    const CrossbarNetlist net =
        build_crossbar_netlist(volts, conductances, g_b, g_d);
    const auto v = MnaSolver(net.netlist).solve_dc();
    worst = std::max(worst,
                     std::abs(v[static_cast<std::size_t>(net.output_node)] -
                              col.output(volts)));
  }
  std::cout << "[1] crossbar MNA vs Eq.(1): worst |error| over 200 random "
               "columns = "
            << worst << " V (expected ~1e-12)\n\n";

  // ---- 2. coupling factor sweep ------------------------------------------
  util::Table mu_table(
      {"R (Ohm)", "C (uF)", "Load (kOhm)", "mu_min", "mu_mean", "mu_max"});
  double global_min = 1e9, global_max = 0.0;
  for (const double r : {100.0, 300.0, 600.0, 1000.0}) {
    for (const double c_uf : {1.0, 10.0, 50.0, 100.0}) {
      for (const double load_k : {100.0, 500.0, 2000.0}) {
        const CouplingStats stats = measure_coupling_factor(
            r, c_uf * 1e-6, load_k * 1e3, /*t_end=*/0.5, /*dt=*/2e-4);
        if (stats.samples == 0) continue;
        mu_table.add_row({util::format_fixed(r, 0),
                          util::format_fixed(c_uf, 0),
                          util::format_fixed(load_k, 0),
                          util::format_fixed(stats.mu_min, 4),
                          util::format_fixed(stats.mu_mean, 4),
                          util::format_fixed(stats.mu_max, 4)});
        global_min = std::min(global_min, stats.mu_min);
        global_max = std::max(global_max, stats.mu_max);
      }
    }
  }
  std::cout << "[2] coupling factor mu across the printable design space "
               "(paper claim: mu in [1, 1.3])\n\n";
  mu_table.print(std::cout);
  std::cout << "\n    global range: [" << util::format_fixed(global_min, 4)
            << ", " << util::format_fixed(global_max, 4) << "]\n\n";
  mu_table.write_csv("mna_mu_sweep.csv");

  // ---- 3. discrete update vs MNA transient -------------------------------
  const double r = 700.0, c = 40e-6, dt = 1e-3;
  FilterNetlist f = build_first_order_filter(r, c, 0.0,
                                             [](double) { return 1.0; });
  const auto tr = MnaSolver(f.netlist).solve_transient(0.2, dt);
  const double rc = r * c;
  double h = 0.0, worst_step = 0.0;
  for (std::size_t k = 1; k < tr.time.size(); ++k) {
    h = rc / (rc + dt) * h + dt / (rc + dt);
    worst_step =
        std::max(worst_step, std::abs(tr.voltage(k, f.output_node) - h));
  }
  std::cout << "[3] RC discrete update (Eq. 3) vs MNA transient: worst "
               "|error| = "
            << worst_step << " V (expected ~1e-12)\n";

  bench::JsonReport report("mna_validation");
  report.metric("crossbar_worst_abs_error_v", worst);
  report.metric("coupling_mu_min", global_min);
  report.metric("coupling_mu_max", global_max);
  report.metric("rc_update_worst_abs_error_v", worst_step);
  report.write();
  return 0;
}
