// Micro-benchmarks of the computational substrate: tensor kernels,
// autodiff forward/backward, filter steps and whole-model passes. Useful
// for tracking performance regressions in the training stack that all
// table harnesses sit on.
//
// Besides the google-benchmark timings printed to stdout, main() runs
// direct head-to-head comparisons (blocked vs naive matmul, fused vs
// transpose-copy backward, Monte-Carlo fan-out at 1/2/N threads) and
// writes them to BENCH_micro_ops.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "bench_common.hpp"
#include "pnc/autodiff/ops.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/train/trainer.hpp"

namespace {

using namespace pnc;

ad::Tensor random_tensor(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  ad::Tensor t(r, c);
  for (auto& v : t.data()) v = rng.uniform(-1.0, 1.0);
  return t;
}

void bm_matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ad::Tensor a = random_tensor(n, n, 1);
  const ad::Tensor b = random_tensor(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ad::matmul(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_matmul)->Range(8, 512)->Complexity(benchmark::oNCubed);

void bm_matmul_naive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ad::Tensor a = random_tensor(n, n, 1);
  const ad::Tensor b = random_tensor(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ad::matmul_naive(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_matmul_naive)->Range(8, 512)->Complexity(benchmark::oNCubed);

void bm_matmul_backward_fused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ad::Tensor g = random_tensor(n, n, 3);
  const ad::Tensor a = random_tensor(n, n, 4);
  const ad::Tensor b = random_tensor(n, n, 5);
  ad::Tensor da(n, n);
  ad::Tensor db(n, n);
  for (auto _ : state) {
    ad::add_matmul_abt(da, g, b);
    ad::add_matmul_atb(db, a, g);
    benchmark::DoNotOptimize(da.data().data());
    benchmark::DoNotOptimize(db.data().data());
  }
}
BENCHMARK(bm_matmul_backward_fused)->Range(16, 256);

void bm_matmul_backward_transposed(benchmark::State& state) {
  // The pre-rewrite backward: materialize the transposes, then multiply.
  const auto n = static_cast<std::size_t>(state.range(0));
  const ad::Tensor g = random_tensor(n, n, 3);
  const ad::Tensor a = random_tensor(n, n, 4);
  const ad::Tensor b = random_tensor(n, n, 5);
  ad::Tensor da(n, n);
  ad::Tensor db(n, n);
  for (auto _ : state) {
    da += ad::matmul_naive(g, b.transposed());
    db += ad::matmul_naive(a.transposed(), g);
    benchmark::DoNotOptimize(da.data().data());
    benchmark::DoNotOptimize(db.data().data());
  }
}
BENCHMARK(bm_matmul_backward_transposed)->Range(16, 256);

void bm_elementwise_graph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ad::Parameter p("p", random_tensor(n, n, 3));
  for (auto _ : state) {
    ad::Graph g;
    ad::Var x = g.leaf(p);
    ad::Var loss = ad::mean_all(ad::square(ad::tanh(x)));
    g.backward(loss);
    benchmark::DoNotOptimize(p.grad.data().data());
    p.zero_grad();
  }
}
BENCHMARK(bm_elementwise_graph)->Range(16, 128);

void bm_softmax_ce(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  ad::Parameter logits("l", random_tensor(batch, 6, 5));
  std::vector<int> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    ad::Graph g;
    ad::Var loss = ad::softmax_cross_entropy(g.leaf(logits), labels);
    g.backward(loss);
    benchmark::DoNotOptimize(logits.grad.data().data());
    logits.zero_grad();
  }
}
BENCHMARK(bm_softmax_ce)->Range(32, 512);

void bm_filter_step(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  core::FilterLayer f("f", channels, core::FilterOrder::kSecond, 0.01, rng);
  const ad::Tensor x = random_tensor(64, channels, 9);
  for (auto _ : state) {
    ad::Graph g;
    util::Rng ri(0);
    auto pass = f.begin(g, 64, variation::VariationSpec::none(), ri);
    ad::Var input = g.constant(x);
    ad::Var out;
    for (int k = 0; k < 16; ++k) out = f.step(g, pass, input);
    benchmark::DoNotOptimize(g.value(out).data().data());
  }
}
BENCHMARK(bm_filter_step)->Range(2, 32);

void bm_model_forward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto net = core::make_adapt_pnc(3, 0.01, 1, 9);
  const ad::Tensor inputs = random_tensor(batch, 64, 11);
  util::Rng rng(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net->predict(inputs, variation::VariationSpec::none(), rng));
  }
}
BENCHMARK(bm_model_forward)->Range(16, 128)->Unit(benchmark::kMillisecond);

void bm_model_backward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto net = core::make_adapt_pnc(3, 0.01, 1, 9);
  const ad::Tensor inputs = random_tensor(batch, 64, 13);
  std::vector<int> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = static_cast<int>(i % 3);
  util::Rng rng(0);
  for (auto _ : state) {
    for (auto* p : net->parameters()) p->zero_grad();
    ad::Graph g;
    ad::Var logits =
        net->forward(g, inputs, variation::VariationSpec::none(), rng);
    g.backward(ad::softmax_cross_entropy(logits, labels));
    benchmark::DoNotOptimize(net->parameters()[0]->grad.data().data());
  }
}
BENCHMARK(bm_model_backward)->Range(16, 128)->Unit(benchmark::kMillisecond);

void bm_variation_sampling(benchmark::State& state) {
  util::Rng rng(17);
  const variation::UniformVariation model(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(variation::sample_factors(model, 16, 16, rng));
  }
}
BENCHMARK(bm_variation_sampling);

// ---------------------------------------------------------------------------
// Direct head-to-head timings for BENCH_micro_ops.json.

template <class F>
double best_seconds(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (dt < best) best = dt;
  }
  return best;
}

void report_matmul_kernels(bench::JsonReport& report, int reps) {
  const std::size_t n = bench::quick_mode() ? 96 : 192;
  const ad::Tensor a = random_tensor(n, n, 21);
  const ad::Tensor b = random_tensor(n, n, 22);
  const double naive = best_seconds(reps, [&] {
    benchmark::DoNotOptimize(ad::matmul_naive(a, b));
  });
  const double blocked = best_seconds(reps, [&] {
    benchmark::DoNotOptimize(ad::matmul(a, b));
  });
  report.phase_seconds("matmul_naive", naive);
  report.phase_seconds("matmul_blocked", blocked);
  report.metric("matmul_blocked_speedup", naive / blocked);

  const ad::Tensor g = random_tensor(n, n, 23);
  ad::Tensor da(n, n);
  ad::Tensor db(n, n);
  const double transposed = best_seconds(reps, [&] {
    da += ad::matmul_naive(g, b.transposed());
    db += ad::matmul_naive(a.transposed(), g);
  });
  const double fused = best_seconds(reps, [&] {
    ad::add_matmul_abt(da, g, b);
    ad::add_matmul_atb(db, a, g);
  });
  report.phase_seconds("matmul_backward_transposed", transposed);
  report.phase_seconds("matmul_backward_fused", fused);
  report.metric("matmul_backward_fused_speedup", transposed / fused);
}

void report_mc_fanout(bench::JsonReport& report, int reps) {
  // The tentpole path: one variation-aware gradient round, fanned out over
  // pools of different sizes. The fixed {2, 16} set is always measured
  // (plus the host's own width) so runs on different machines report
  // comparable keys; on a host with fewer cores the larger pools track
  // scheduler overhead rather than speedup — "machine" in the JSON says
  // which is which.
  const data::Dataset ds =
      data::make_dataset("Slope", 42, bench::quick_mode() ? 32 : 64);
  auto model = core::make_adapt_pnc(static_cast<std::size_t>(ds.num_classes),
                                    ds.sample_period, 1, 6);
  const auto spec = variation::VariationSpec::printing(0.10, 8);
  const std::size_t mc = 16;  // enough samples that 16 threads have work
  std::vector<std::uint64_t> seeds(mc);
  util::Rng rng(19);
  for (auto& s : seeds) s = rng();
  const auto params = model->parameters();
  std::vector<ad::GradSink> sinks;
  for (std::size_t s = 0; s < mc; ++s) sinks.emplace_back(params);
  util::WorkspacePool<ad::Graph> graphs;

  auto round_seconds = [&](std::size_t pool_size) {
    util::ThreadPool pool(pool_size);
    auto one_round = [&] {
      for (auto* p : params) p->zero_grad();
      benchmark::DoNotOptimize(
          train::monte_carlo_round(*model, ds.train, spec, seeds, pool,
                                   sinks, nullptr, &graphs));
    };
    // Warm-up: spin the workers up and fault the workspaces in before
    // the clock starts, so pool start-up cost is not billed to the first
    // measured round.
    one_round();
    return best_seconds(reps, one_round);
  };

  const double serial = round_seconds(1);
  report.phase_seconds("mc_round_threads_1", serial);
  std::vector<std::size_t> widths{2, util::hardware_threads(), 16};
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  for (const std::size_t t : widths) {
    if (t <= 1) continue;
    const double parallel = round_seconds(t);
    const std::string suffix = std::to_string(t);
    report.phase_seconds("mc_round_threads_" + suffix, parallel);
    report.metric("mc_fanout_speedup_" + suffix, serial / parallel);
  }
}

void report_plan_forward(bench::JsonReport& report, int reps) {
  // Single-thread fused-plan throughput plus a deterministic logit
  // checksum: CI runs this once with the AVX2 build and once with the
  // scalar build and asserts the checksums are bit-identical (the SIMD
  // lanes must follow the exact scalar op sequence).
  const std::size_t batch = bench::quick_mode() ? 32 : 96;
  auto model = core::make_adapt_pnc(3, 0.01, 1, 6);
  const ad::Tensor inputs = random_tensor(batch, 64, 29);
  const infer::Engine engine = infer::Engine::compile(*model);
  infer::Plan plan = engine.make_plan();
  const auto spec = variation::VariationSpec::printing(0.10, 8);
  ad::Tensor logits;
  {
    util::Rng rng(31);
    logits = engine.predict(plan, inputs, spec, rng);  // warm-up
  }
  const double seconds = best_seconds(reps, [&] {
    util::Rng round_rng(31);
    logits = engine.predict(plan, inputs, spec, round_rng);
    benchmark::DoNotOptimize(logits.data().data());
  });
  report.phase_seconds("plan_forward", seconds);
  double checksum = 0.0;
  for (const double v : logits.data()) checksum += v;  // fixed order
  report.metric("plan_forward_checksum", checksum);
  report.metric("plan_forward_rows_per_sec",
                static_cast<double>(batch) / seconds);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  bench::JsonReport report("micro_ops");
  const int reps = bench::quick_mode() ? 3 : 7;
  report_matmul_kernels(report, reps);
  report_mc_fanout(report, reps);
  report_plan_forward(report, reps);
  report.write();
  return 0;
}
