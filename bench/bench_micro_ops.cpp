// Micro-benchmarks of the computational substrate: tensor kernels,
// autodiff forward/backward, filter steps and whole-model passes. Useful
// for tracking performance regressions in the training stack that all
// table harnesses sit on.

#include <benchmark/benchmark.h>

#include "pnc/autodiff/ops.hpp"
#include "pnc/core/adapt_pnc.hpp"

namespace {

using namespace pnc;

ad::Tensor random_tensor(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  ad::Tensor t(r, c);
  for (auto& v : t.data()) v = rng.uniform(-1.0, 1.0);
  return t;
}

void bm_matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ad::Tensor a = random_tensor(n, n, 1);
  const ad::Tensor b = random_tensor(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ad::matmul(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_matmul)->Range(8, 256)->Complexity(benchmark::oNCubed);

void bm_elementwise_graph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ad::Parameter p("p", random_tensor(n, n, 3));
  for (auto _ : state) {
    ad::Graph g;
    ad::Var x = g.leaf(p);
    ad::Var loss = ad::mean_all(ad::square(ad::tanh(x)));
    g.backward(loss);
    benchmark::DoNotOptimize(p.grad.data().data());
    p.zero_grad();
  }
}
BENCHMARK(bm_elementwise_graph)->Range(16, 128);

void bm_softmax_ce(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  ad::Parameter logits("l", random_tensor(batch, 6, 5));
  std::vector<int> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = static_cast<int>(i % 6);
  for (auto _ : state) {
    ad::Graph g;
    ad::Var loss = ad::softmax_cross_entropy(g.leaf(logits), labels);
    g.backward(loss);
    benchmark::DoNotOptimize(logits.grad.data().data());
    logits.zero_grad();
  }
}
BENCHMARK(bm_softmax_ce)->Range(32, 512);

void bm_filter_step(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  core::FilterLayer f("f", channels, core::FilterOrder::kSecond, 0.01, rng);
  const ad::Tensor x = random_tensor(64, channels, 9);
  for (auto _ : state) {
    ad::Graph g;
    util::Rng ri(0);
    auto pass = f.begin(g, 64, variation::VariationSpec::none(), ri);
    ad::Var input = g.constant(x);
    ad::Var out;
    for (int k = 0; k < 16; ++k) out = f.step(g, pass, input);
    benchmark::DoNotOptimize(g.value(out).data().data());
  }
}
BENCHMARK(bm_filter_step)->Range(2, 32);

void bm_model_forward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto net = core::make_adapt_pnc(3, 0.01, 1, 9);
  const ad::Tensor inputs = random_tensor(batch, 64, 11);
  util::Rng rng(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net->predict(inputs, variation::VariationSpec::none(), rng));
  }
}
BENCHMARK(bm_model_forward)->Range(16, 128)->Unit(benchmark::kMillisecond);

void bm_model_backward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto net = core::make_adapt_pnc(3, 0.01, 1, 9);
  const ad::Tensor inputs = random_tensor(batch, 64, 13);
  std::vector<int> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = static_cast<int>(i % 3);
  util::Rng rng(0);
  for (auto _ : state) {
    for (auto* p : net->parameters()) p->zero_grad();
    ad::Graph g;
    ad::Var logits =
        net->forward(g, inputs, variation::VariationSpec::none(), rng);
    g.backward(ad::softmax_cross_entropy(logits, labels));
    benchmark::DoNotOptimize(net->parameters()[0]->grad.data().data());
  }
}
BENCHMARK(bm_model_backward)->Range(16, 128)->Unit(benchmark::kMillisecond);

void bm_variation_sampling(benchmark::State& state) {
  util::Rng rng(17);
  const variation::UniformVariation model(0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(variation::sample_factors(model, 16, 16, rng));
  }
}
BENCHMARK(bm_variation_sampling);

}  // namespace

BENCHMARK_MAIN();
