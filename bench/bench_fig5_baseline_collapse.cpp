// Fig. 5: a pTPNC trained with no variation awareness collapses when
// tested under physical component variation and perturbed sensor inputs.
//
// For each dataset in a representative subset we train the clean baseline
// once, then sweep the evaluation variation δ ∈ {0, 5, 10, 20} % with clean
// and with perturbed (augmented) test inputs, printing the accuracy series
// the figure plots.

#include <iostream>

#include "bench_common.hpp"
#include "pnc/augment/augment.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  const std::vector<std::string> datasets =
      bench::quick_mode()
          ? std::vector<std::string>{"GPMVF"}
          : std::vector<std::string>{"CBF", "GPMVF", "PowerCons", "Slope",
                                     "SmoothS"};
  const std::vector<double> deltas = {0.0, 0.05, 0.10, 0.20};

  bench::JsonReport report("fig5_baseline_collapse");

  util::Table table({"Dataset", "Inputs", "delta=0%", "delta=5%", "delta=10%",
                     "delta=20%"});

  std::vector<std::vector<double>> clean_rows, perturbed_rows;
  for (const auto& name : datasets) {
    std::cerr << "[fig5] " << name << "...\n";
    const auto t0 = std::chrono::steady_clock::now();
    train::ExperimentSpec spec = train::baseline_spec(name);
    bench::apply_scale(spec);

    const data::Dataset ds =
        data::make_dataset(name, spec.data_seed, spec.sequence_length);
    auto model = train::make_model(
        spec, static_cast<std::size_t>(ds.num_classes), ds.sample_period, 7);
    train::TrainConfig config = spec.train;
    config.train_variation = variation::VariationSpec::none();
    config.augmentation.reset();
    (void)train::train(*model, ds, config);

    util::Rng rng(17);
    const augment::Augmenter augmenter{augment::AugmentConfig{}};
    const data::Split perturbed =
        augmenter.augment_split(ds.test, rng, /*include_original=*/true);

    auto sweep = [&](const data::Split& split) {
      std::vector<double> accs;
      for (const double delta : deltas) {
        const variation::VariationSpec eval =
            delta == 0.0 ? variation::VariationSpec::none()
                         : variation::VariationSpec::printing(delta);
        accs.push_back(train::evaluate_accuracy(*model, split, eval, rng,
                                                spec.eval_repeats * 2));
      }
      return accs;
    };

    const auto clean_accs = sweep(ds.test);
    const auto pert_accs = sweep(perturbed);
    clean_rows.push_back(clean_accs);
    perturbed_rows.push_back(pert_accs);

    auto to_row = [&](const char* kind, const std::vector<double>& accs) {
      std::vector<std::string> row = {name, kind};
      for (double a : accs) row.push_back(util::format_fixed(a, 3));
      return row;
    };
    table.add_row(to_row("clean", clean_accs));
    table.add_row(to_row("perturbed", pert_accs));
    report.phase_seconds(
        name, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
  }

  // Averages across datasets — the figure's headline collapse.
  auto average_row = [&](const char* kind,
                         const std::vector<std::vector<double>>& rows) {
    std::vector<std::string> row = {"Average", kind};
    for (std::size_t d = 0; d < deltas.size(); ++d) {
      double sum = 0.0;
      for (const auto& r : rows) sum += r[d];
      row.push_back(util::format_fixed(sum / rows.size(), 3));
    }
    return row;
  };
  table.add_row(average_row("clean", clean_rows));
  table.add_row(average_row("perturbed", perturbed_rows));

  // The figure's headline numbers: dataset-average accuracy at each eval
  // variation, clean vs perturbed inputs.
  auto average_metric = [&](const char* kind,
                            const std::vector<std::vector<double>>& rows) {
    for (std::size_t d = 0; d < deltas.size(); ++d) {
      double sum = 0.0;
      for (const auto& r : rows) sum += r[d];
      report.metric(std::string(kind) + "_avg_acc_delta_" +
                        util::format_fixed(deltas[d] * 100.0, 0),
                    sum / static_cast<double>(rows.size()));
    }
  };
  average_metric("clean", clean_rows);
  average_metric("perturbed", perturbed_rows);

  std::cout << "\nFig. 5 — no-variation-aware pTPNC accuracy vs evaluation "
               "variation\n(paper: significant drop once delta > 0 and "
               "inputs are perturbed)\n\n";
  table.print(std::cout);
  table.write_csv("fig5_baseline_collapse.csv");
  report.write();
  return 0;
}
