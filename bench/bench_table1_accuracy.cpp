// Table I: accuracy of the Elman RNN reference, the pTPNC baseline and the
// robustness-aware ADAPT-pNC on the 15 benchmark datasets, evaluated under
// ±10 % component variation with perturbed (augmented) test inputs.
//
// Protocol (Sec. IV): multi-seed training, top-3 model selection by clean
// test accuracy, Monte-Carlo evaluation; rows report mean ± std over the
// selected models. Scaled per EXPERIMENTS.md (set PNC_QUICK=1 for a smoke
// run). Datasets run concurrently on the process-wide pool; the training
// loops inside each dataset then run their Monte-Carlo fan-out serially
// inline, so the machine is never oversubscribed.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/util/stats.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

train::ExperimentResult run_cell(train::ExperimentSpec spec) {
  bench::apply_scale(spec);
  return run_experiment(spec);
}

struct DatasetRow {
  train::ExperimentResult elman;
  train::ExperimentResult base;
  train::ExperimentResult adapt;
  double seconds = 0.0;
};

}  // namespace

int main() {
  using util::format_mean_std;

  bench::JsonReport report("table1_accuracy");
  const auto specs = data::benchmark_specs();
  std::vector<DatasetRow> rows(specs.size());

  util::global_pool().parallel_for(specs.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    std::cerr << "[table1] " << specs[i].name << "...\n";
    rows[i].elman = run_cell(train::elman_spec(specs[i].name));
    rows[i].base = run_cell(train::baseline_spec(specs[i].name));
    rows[i].adapt = run_cell(train::adapt_spec(specs[i].name));
    rows[i].seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });

  util::Table table({"Dataset", "Elman RNN (Reference)", "pTPNC (Baseline)",
                     "Robustness-Aware ADAPT-pNC"});
  std::vector<double> elman_means, base_means, adapt_means;
  std::vector<double> elman_stds, base_stds, adapt_stds;

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const DatasetRow& row = rows[i];
    table.add_row({specs[i].name,
                   format_mean_std(row.elman.perturbed_accuracy.mean,
                                   row.elman.perturbed_accuracy.stddev),
                   format_mean_std(row.base.perturbed_accuracy.mean,
                                   row.base.perturbed_accuracy.stddev),
                   format_mean_std(row.adapt.perturbed_accuracy.mean,
                                   row.adapt.perturbed_accuracy.stddev)});
    elman_means.push_back(row.elman.perturbed_accuracy.mean);
    base_means.push_back(row.base.perturbed_accuracy.mean);
    adapt_means.push_back(row.adapt.perturbed_accuracy.mean);
    elman_stds.push_back(row.elman.perturbed_accuracy.stddev);
    base_stds.push_back(row.base.perturbed_accuracy.stddev);
    adapt_stds.push_back(row.adapt.perturbed_accuracy.stddev);
    report.phase_seconds(specs[i].name, row.seconds);
  }

  table.add_row({"Average",
                 util::format_mean_std(util::mean(elman_means),
                                       util::mean(elman_stds)),
                 util::format_mean_std(util::mean(base_means),
                                       util::mean(base_stds)),
                 util::format_mean_std(util::mean(adapt_means),
                                       util::mean(adapt_stds))});

  std::cout << "\nTable I — accuracy under ±10% variation + perturbed "
               "inputs (paper: Elman 0.501, pTPNC 0.582, ADAPT-pNC 0.726)\n\n";
  table.print(std::cout);
  table.write_csv("table1_accuracy.csv");

  const double improvement =
      util::mean(adapt_means) - util::mean(base_means);
  std::cout << "\nADAPT-pNC improvement over baseline: "
            << util::format_fixed(improvement * 100.0, 1)
            << " accuracy points (paper: ~14.4 points / ~24.7% relative)\n";

  report.metric("elman_perturbed_mean", util::mean(elman_means));
  report.metric("baseline_perturbed_mean", util::mean(base_means));
  report.metric("adapt_perturbed_mean", util::mean(adapt_means));
  report.metric("adapt_vs_baseline_points", improvement * 100.0);
  report.write();
  return 0;
}
