// Table I: accuracy of the Elman RNN reference, the pTPNC baseline and the
// robustness-aware ADAPT-pNC on the 15 benchmark datasets, evaluated under
// ±10 % component variation with perturbed (augmented) test inputs.
//
// Protocol (Sec. IV): multi-seed training, top-3 model selection by clean
// test accuracy, Monte-Carlo evaluation; rows report mean ± std over the
// selected models. Scaled per EXPERIMENTS.md (set PNC_QUICK=1 for a smoke
// run).

#include <iostream>

#include "bench_common.hpp"
#include "pnc/util/stats.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

train::ExperimentResult run_cell(train::ExperimentSpec spec) {
  bench::apply_scale(spec);
  return run_experiment(spec);
}

}  // namespace

int main() {
  using util::format_mean_std;

  util::Table table({"Dataset", "Elman RNN (Reference)", "pTPNC (Baseline)",
                     "Robustness-Aware ADAPT-pNC"});
  std::vector<double> elman_means, base_means, adapt_means;
  std::vector<double> elman_stds, base_stds, adapt_stds;

  for (const auto& spec : data::benchmark_specs()) {
    std::cerr << "[table1] " << spec.name << "...\n";
    const auto r_elman = run_cell(train::elman_spec(spec.name));
    const auto r_base = run_cell(train::baseline_spec(spec.name));
    const auto r_adapt = run_cell(train::adapt_spec(spec.name));

    table.add_row({spec.name,
                   format_mean_std(r_elman.perturbed_accuracy.mean,
                                   r_elman.perturbed_accuracy.stddev),
                   format_mean_std(r_base.perturbed_accuracy.mean,
                                   r_base.perturbed_accuracy.stddev),
                   format_mean_std(r_adapt.perturbed_accuracy.mean,
                                   r_adapt.perturbed_accuracy.stddev)});
    elman_means.push_back(r_elman.perturbed_accuracy.mean);
    base_means.push_back(r_base.perturbed_accuracy.mean);
    adapt_means.push_back(r_adapt.perturbed_accuracy.mean);
    elman_stds.push_back(r_elman.perturbed_accuracy.stddev);
    base_stds.push_back(r_base.perturbed_accuracy.stddev);
    adapt_stds.push_back(r_adapt.perturbed_accuracy.stddev);
  }

  table.add_row({"Average",
                 util::format_mean_std(util::mean(elman_means),
                                       util::mean(elman_stds)),
                 util::format_mean_std(util::mean(base_means),
                                       util::mean(base_stds)),
                 util::format_mean_std(util::mean(adapt_means),
                                       util::mean(adapt_stds))});

  std::cout << "\nTable I — accuracy under ±10% variation + perturbed "
               "inputs (paper: Elman 0.501, pTPNC 0.582, ADAPT-pNC 0.726)\n\n";
  table.print(std::cout);
  table.write_csv("table1_accuracy.csv");

  const double improvement =
      util::mean(adapt_means) - util::mean(base_means);
  std::cout << "\nADAPT-pNC improvement over baseline: "
            << util::format_fixed(improvement * 100.0, 1)
            << " accuracy points (paper: ~14.4 points / ~24.7% relative)\n";
  return 0;
}
