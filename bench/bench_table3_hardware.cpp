// Table III: hardware costs (transistor / resistor / capacitor / total
// device counts and static power) of the baseline pTPNC [8] versus the
// proposed ADAPT-pNC, per dataset.
//
// Counts follow the topology sizing rules of Sec. IV (baseline hidden = C,
// proposed hidden = C²) and the per-primitive device rules documented in
// DESIGN.md; power uses the two resistance design points (legacy low-R vs
// proposed high-R), which is where the paper's ≈91 % power saving at
// ≈1.9× device cost comes from.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/hardware/cost_model.hpp"
#include "pnc/train/experiment.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;
  using util::format_fixed;

  util::Table table({"Dataset", "#T base", "#T prop", "#R base", "#R prop",
                     "#C base", "#C prop", "#Tot base", "#Tot prop",
                     "P base (mW)", "P prop (mW)"});

  const hardware::DesignStyle legacy = hardware::legacy_ptpnc_style();
  const hardware::DesignStyle proposed = hardware::adapt_pnc_style();

  double sum_base_total = 0.0, sum_prop_total = 0.0;
  double sum_base_power = 0.0, sum_prop_power = 0.0;
  hardware::DeviceCounts avg_base{}, avg_prop{};

  const auto& specs = data::benchmark_specs();
  for (const auto& spec : specs) {
    const auto classes = static_cast<std::size_t>(spec.num_classes);
    // Uncapped paper sizing; seed fixes the inverter assignment draw.
    auto base = core::make_baseline_ptpnc(classes, spec.sample_period, 1);
    core::PncTopology topology =
        core::PncTopology::adapt(classes, spec.sample_period);
    topology.hidden = train::paper_hidden(spec.name, classes);
    auto prop = std::make_unique<core::PrintedTemporalNetwork>(
        "adapt_pnc", topology, core::FilterOrder::kSecond, 1);

    const hardware::DeviceCounts cb = hardware::count_devices(*base);
    const hardware::DeviceCounts cp = hardware::count_devices(*prop);
    const double pb = hardware::estimate_power(*base, legacy).total() * 1e3;
    const double pp = hardware::estimate_power(*prop, proposed).total() * 1e3;

    table.add_row({spec.name, std::to_string(cb.transistors),
                   std::to_string(cp.transistors),
                   std::to_string(cb.resistors), std::to_string(cp.resistors),
                   std::to_string(cb.capacitors),
                   std::to_string(cp.capacitors), std::to_string(cb.total()),
                   std::to_string(cp.total()), format_fixed(pb, 3),
                   format_fixed(pp, 3)});

    avg_base += cb;
    avg_prop += cp;
    sum_base_total += static_cast<double>(cb.total());
    sum_prop_total += static_cast<double>(cp.total());
    sum_base_power += pb;
    sum_prop_power += pp;
  }

  const double n = static_cast<double>(specs.size());
  table.add_row(
      {"Average", format_fixed(avg_base.transistors / n, 0),
       format_fixed(avg_prop.transistors / n, 0),
       format_fixed(avg_base.resistors / n, 0),
       format_fixed(avg_prop.resistors / n, 0),
       format_fixed(avg_base.capacitors / n, 0),
       format_fixed(avg_prop.capacitors / n, 0),
       format_fixed(sum_base_total / n, 0), format_fixed(sum_prop_total / n, 0),
       format_fixed(sum_base_power / n, 3), format_fixed(sum_prop_power / n, 3)});

  std::cout << "Table III — hardware costs, pTPNC [8] vs ADAPT-pNC\n"
            << "(paper averages: 118 vs 228 devices, 0.634 vs 0.058 mW)\n\n";
  table.print(std::cout);
  table.write_csv("table3_hardware.csv");

  std::cout << "\nDevice overhead: "
            << format_fixed(sum_prop_total / sum_base_total, 2)
            << "x (paper: ~1.9x); power saving: "
            << format_fixed(100.0 * (1.0 - sum_prop_power / sum_base_power), 1)
            << "% (paper: ~91%)\n";

  bench::JsonReport report("table3_hardware");
  report.metric("avg_devices_baseline", sum_base_total / n);
  report.metric("avg_devices_proposed", sum_prop_total / n);
  report.metric("avg_power_mw_baseline", sum_base_power / n);
  report.metric("avg_power_mw_proposed", sum_prop_power / n);
  report.metric("device_overhead_x", sum_prop_total / sum_base_total);
  report.metric("power_saving_pct",
                100.0 * (1.0 - sum_prop_power / sum_base_power));
  report.write();
  return 0;
}
