// Table II: average runtime comparison of the Elman RNN, the pTPNC
// baseline and the robustness-aware ADAPT-pNC.
//
// The paper reports per-model average *training pipeline* time (Elman
// 2.345 ms/epoch-scale vs pTPNC 0.230 s vs ADAPT-pNC 2.537 s); we measure
// both one full-batch inference and one training epoch per model with
// google-benchmark, which preserves the ordering and the relative factors.
// Besides the google-benchmark timings on stdout, main() measures the
// compiled inference engine against the graph-based forward for every
// model and writes BENCH_table2_runtime.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "bench_common.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/train/experiment.hpp"
#include "pnc/train/trainer.hpp"

namespace {

using namespace pnc;

constexpr std::size_t kHiddenCap = 10;

const data::Dataset& dataset() {
  static const data::Dataset ds = data::make_dataset("PowerCons", 42, 64);
  return ds;
}

std::unique_ptr<core::SequenceClassifier> make(const std::string& which) {
  const auto& ds = dataset();
  const auto classes = static_cast<std::size_t>(ds.num_classes);
  if (which == "elman") return baseline::make_elman(classes, 1, kHiddenCap);
  if (which == "ptpnc") {
    return core::make_baseline_ptpnc(classes, ds.sample_period, 1);
  }
  return core::make_adapt_pnc(classes, ds.sample_period, 1, kHiddenCap);
}

void bm_inference(benchmark::State& state, const std::string& which,
                  const variation::VariationSpec& spec) {
  auto model = make(which);
  util::Rng rng(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->predict(dataset().test.inputs, spec, rng));
  }
}

void bm_inference_engine(benchmark::State& state, const std::string& which,
                         const variation::VariationSpec& spec) {
  auto model = make(which);
  const auto engine = infer::Engine::compile(*model);
  infer::Plan plan = engine.make_plan();
  util::Rng rng(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.predict(plan, dataset().test.inputs, spec, rng));
  }
}

void bm_train_epoch(benchmark::State& state, const std::string& which,
                    const variation::VariationSpec& train_spec,
                    bool augmented) {
  auto model = make(which);
  util::Rng rng(0);
  std::optional<augment::Augmenter> augmenter;
  if (augmented) augmenter.emplace(augment::AugmentConfig{});

  const int mc = std::max(train_spec.monte_carlo_samples, 1);
  for (auto _ : state) {
    const data::Split* batch = &dataset().train;
    data::Split augmented_split;
    if (augmenter) {
      augmented_split = augmenter->augment_split(dataset().train, rng, true);
      batch = &augmented_split;
    }
    for (auto* p : model->parameters()) p->zero_grad();
    double loss = 0.0;
    for (int s = 0; s < mc; ++s) {
      loss += train::forward_loss(*model, *batch, train_spec, rng, true,
                                  1.0 / mc);
    }
    benchmark::DoNotOptimize(loss);
  }
}

const variation::VariationSpec kClean = variation::VariationSpec::none();
const variation::VariationSpec kVa = variation::VariationSpec::printing(0.10, 3);

/// Best-of-`reps` wall time of fn() in seconds.
template <class F>
double best_seconds(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    best = std::min(best, s);
  }
  return best;
}

/// Engine vs graph full-batch inference throughput, per model. Each
/// measured call is one variation stamp + one forward over the whole test
/// split — the unit of work of Monte-Carlo yield / accuracy evaluation.
void report_engine_vs_graph(bench::JsonReport& report, int reps) {
  const ad::Tensor& inputs = dataset().test.inputs;
  const auto spec = variation::VariationSpec::printing(0.10);
  const double rows = static_cast<double>(inputs.rows());
  for (const std::string which : {"elman", "ptpnc", "adapt"}) {
    auto model = make(which);
    const auto engine = infer::Engine::compile(*model);
    infer::Plan plan = engine.make_plan();

    const double graph = best_seconds(reps, [&] {
      util::Rng rng(11);
      benchmark::DoNotOptimize(model->predict(inputs, spec, rng));
    });
    const double compiled = best_seconds(reps, [&] {
      util::Rng rng(11);
      benchmark::DoNotOptimize(engine.predict(plan, inputs, spec, rng));
    });
    report.metric(which + "_graph_series_per_s", rows / graph);
    report.metric(which + "_engine_series_per_s", rows / compiled);
    report.metric(which + "_engine_speedup", graph / compiled);
  }
}

}  // namespace

BENCHMARK_CAPTURE(bm_inference, elman, "elman", kClean)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_inference, ptpnc, "ptpnc", kClean)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_inference, adapt_pnc, "adapt", kClean)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(bm_inference_engine, elman, "elman", kClean)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_inference_engine, ptpnc, "ptpnc", kClean)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_inference_engine, adapt_pnc, "adapt", kClean)
    ->Unit(benchmark::kMillisecond);

// Training epochs in the configuration each model uses in Table I:
// Elman and pTPNC train clean; ADAPT-pNC pays for Monte-Carlo variation
// sampling and augmentation — the paper's ~10x runtime gap.
BENCHMARK_CAPTURE(bm_train_epoch, elman, "elman", kClean, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_train_epoch, ptpnc, "ptpnc", kClean, false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_train_epoch, adapt_pnc_va_at, "adapt", kVa, true)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();

  bench::JsonReport report("table2_runtime");
  const int reps = bench::quick_mode() ? 3 : 7;
  report_engine_vs_graph(report, reps);
  report.write();
  return 0;
}
