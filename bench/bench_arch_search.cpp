// Ablation / future-work experiment: architecture search over hidden width
// and filter order (Sec. V names architectural search as the next step for
// ADAPT-pNCs). Prints every candidate with robust accuracy, device count
// and power, and flags the accuracy/hardware Pareto front.

#include <iostream>

#include "bench_common.hpp"
#include "pnc/train/arch_search.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  const std::string dataset = "CBF";
  train::ArchSearchConfig config;
  config.hidden_widths = bench::quick_mode()
                             ? std::vector<std::size_t>{2, 4}
                             : std::vector<std::size_t>{2, 3, 4, 6, 9};
  config.train.max_epochs = bench::quick_mode() ? 15 : 80;
  config.train.patience = bench::quick_mode() ? 5 : 12;
  config.train.train_variation = variation::VariationSpec::printing(0.10, 2);
  config.eval_repeats = bench::quick_mode() ? 1 : 3;
  config.sequence_length = bench::quick_mode() ? 32 : 64;

  bench::JsonReport report("arch_search");

  std::cerr << "[arch] searching "
            << config.hidden_widths.size() * config.orders.size()
            << " candidates on " << dataset << "...\n";
  std::vector<train::ArchPoint> points;
  report.timed_phase("search", [&] {
    points = train::architecture_search(dataset, config);
  });

  util::Table table({"Order", "Hidden", "Clean acc", "Robust acc", "Devices",
                     "Power (mW)", "Pareto"});
  std::size_t pareto = 0;
  double best_robust = 0.0;
  for (const auto& p : points) {
    table.add_row(
        {p.candidate.order == core::FilterOrder::kSecond ? "2nd (SO-LF)"
                                                         : "1st",
         std::to_string(p.candidate.hidden),
         util::format_fixed(p.clean_accuracy, 3),
         util::format_fixed(p.robust_accuracy, 3),
         std::to_string(p.device_count), util::format_fixed(p.power_mw, 3),
         p.pareto_optimal ? "*" : ""});
    if (p.pareto_optimal) ++pareto;
    best_robust = std::max(best_robust, p.robust_accuracy);
  }
  report.metric("candidates", static_cast<double>(points.size()));
  report.metric("pareto_points", static_cast<double>(pareto));
  report.metric("best_robust_accuracy", best_robust);

  std::cout << "\nArchitecture search on " << dataset
            << " (robust accuracy under ±10% variation vs printed device "
               "cost)\n\n";
  table.print(std::cout);
  table.write_csv("arch_search.csv");
  report.write();
  std::cout << "\n* = on the (accuracy up, devices down) Pareto front.\n";
  return 0;
}
