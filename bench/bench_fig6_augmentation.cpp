// Fig. 6: the five time-series augmentation techniques applied to a
// PowerCons series — original, jittering, time-warping, magnitude scaling,
// random cropping and frequency-domain augmentation.
//
// Emits the full series as CSV (one column per technique) so the figure
// can be re-plotted, plus a summary table of how far each augmented series
// departs from the original.

#include <cmath>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/augment/augment.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  const data::Dataset ds = data::make_dataset("PowerCons", 42, 64);
  std::vector<double> original(ds.length);
  for (std::size_t i = 0; i < ds.length; ++i) {
    original[i] = ds.test.inputs(0, i);
  }

  util::Rng rng(7);
  augment::AugmentConfig config;
  config.jitter_sigma = 0.08;
  config.warp_strength = 0.35;
  config.scale_sigma = 0.25;
  config.crop_keep_ratio = 0.75;
  config.freq_noise_sigma = 0.25;
  config.freq_fraction = 0.5;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  curves.emplace_back("original", original);
  for (const auto& name : augment::augmentation_names()) {
    curves.emplace_back(name,
                        augment::apply_named(name, original, config, rng));
  }

  // Full series dump for plotting.
  std::ofstream csv("fig6_augmentation.csv");
  for (std::size_t c = 0; c < curves.size(); ++c) {
    csv << (c ? "," : "") << curves[c].first;
  }
  csv << '\n';
  for (std::size_t i = 0; i < ds.length; ++i) {
    for (std::size_t c = 0; c < curves.size(); ++c) {
      csv << (c ? "," : "") << curves[c].second[i];
    }
    csv << '\n';
  }

  // Summary: RMS deviation and range per technique.
  bench::JsonReport report("fig6_augmentation");
  util::Table table({"Technique", "RMS deviation", "Min", "Max"});
  for (const auto& [name, series] : curves) {
    double rms = 0.0, lo = series[0], hi = series[0];
    for (std::size_t i = 0; i < series.size(); ++i) {
      const double d = series[i] - original[i];
      rms += d * d;
      lo = std::min(lo, series[i]);
      hi = std::max(hi, series[i]);
    }
    rms = std::sqrt(rms / static_cast<double>(series.size()));
    table.add_row({name, util::format_fixed(rms, 4), util::format_fixed(lo, 3),
                   util::format_fixed(hi, 3)});
    report.metric(name + "_rms_deviation", rms);
  }

  std::cout << "\nFig. 6 — augmentation techniques on PowerCons "
               "(series written to fig6_augmentation.csv)\n\n";
  table.print(std::cout);
  report.write();
  return 0;
}
