// Robustness campaign: fault-injection & sensor-noise severity sweeps.
//
// The reliability counterpart of the yield ablation: instead of asking
// how many fabricated circuits clear a fixed accuracy bar under process
// variation, we stamp *defects* (stuck crossbar conductances, open
// weights, RC drift, dead sensors) and corrupt the test signals
// (impulses, wander, dropouts, thermal noise), then sweep both severities
// Monte-Carlo style. ADAPT-pNC, the first-order pTPNC baseline and the
// Elman RNN reference run the identical campaign grid, so the report
// directly compares how gracefully each family degrades.

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/baseline/elman_rnn.hpp"
#include "pnc/reliability/campaign.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  const std::string dataset = "GPMVF";

  train::ExperimentSpec adapt_spec = train::adapt_spec(dataset);
  bench::apply_scale(adapt_spec);
  train::ExperimentSpec baseline_spec = train::baseline_spec(dataset);
  bench::apply_scale(baseline_spec);
  train::ExperimentSpec elman_spec = train::elman_spec(dataset);
  bench::apply_scale(elman_spec);

  const data::Dataset ds = data::make_dataset(dataset, adapt_spec.data_seed,
                                              adapt_spec.sequence_length);
  const auto classes = static_cast<std::size_t>(ds.num_classes);

  bench::JsonReport report("reliability");

  auto adapt = core::make_adapt_pnc(classes, ds.sample_period, 7,
                                    adapt_spec.hidden_cap);
  auto ptpnc = core::make_baseline_ptpnc(classes, ds.sample_period, 7);
  auto elman = baseline::make_elman(classes, 7, elman_spec.hidden_cap);

  // The three models are independent — train them concurrently; each
  // train() call's nested parallel sections degrade to serial inline.
  report.timed_phase("train_models", [&] {
    util::global_pool().parallel_for(3, [&](std::size_t i) {
      if (i == 0) {
        std::cerr << "[reliability] training ADAPT-pNC...\n";
        (void)train::train(*adapt, ds, adapt_spec.train);
      } else if (i == 1) {
        std::cerr << "[reliability] training pTPNC baseline...\n";
        (void)train::train(*ptpnc, ds, baseline_spec.train);
      } else {
        std::cerr << "[reliability] training Elman RNN...\n";
        (void)train::train(*elman, ds, elman_spec.train);
      }
    });
  });

  // Unit-severity specs: severity s means an overall defect rate of s
  // (split across the fault kinds by FaultSpec::mixed) and sensor noise
  // at s times the reference corruption strength.
  const reliability::FaultSpec fault = reliability::FaultSpec::mixed(1.0);
  const reliability::NoiseSpec noise = reliability::NoiseSpec::sensor(0.2);

  reliability::CampaignConfig config;
  config.circuits_per_cell = bench::quick_mode() ? 4 : 24;
  config.seed = 17;

  std::vector<reliability::RobustnessReport> reports(3);
  core::SequenceClassifier* models[] = {adapt.get(), ptpnc.get(),
                                        elman.get()};
  report.timed_phase("campaigns", [&] {
    // Campaigns parallelize internally over circuits; run them in turn.
    for (std::size_t m = 0; m < 3; ++m) {
      reports[m] =
          reliability::run_campaign(*models[m], ds.test, fault, noise, config);
      std::cerr << "[reliability] " << reports[m].model
                << " campaign done (clean accuracy "
                << reports[m].clean_accuracy << ")\n";
    }
  });

  const std::size_t last_f = config.fault_severities.size() - 1;
  const std::size_t last_n = config.noise_severities.size() - 1;
  util::Table table({"model", "clean acc", "acc @ max fault",
                     "acc @ max noise", "fail fault sev", "fault slope"});
  for (const auto& r : reports) {
    const double fail = r.failure_fault_severity;
    table.add_row(
        {r.model, util::format_fixed(r.clean_accuracy, 3),
         util::format_fixed(r.cell(last_f, 0).stats.mean_accuracy, 3),
         util::format_fixed(r.cell(0, last_n).stats.mean_accuracy, 3),
         fail < 0.0 ? std::string("-") : util::format_fixed(fail, 3),
         util::format_fixed(r.fault_degradation_slope, 2)});
  }
  std::cout << "\nRobustness campaign on " << dataset << " ("
            << config.circuits_per_cell << " circuits per severity cell)\n\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: all models match their clean accuracy at "
               "severity 0; the SO-filter ADAPT-pNC should hold accuracy "
               "longer along both axes than the first-order pTPNC, while "
               "the software Elman RNN is immune to RC drift but not to "
               "stuck weights or sensor corruption.\n";

  {
    std::ofstream csv("reliability.csv");
    for (std::size_t m = 0; m < reports.size(); ++m) {
      reports[m].write_csv(csv, /*header=*/m == 0);
    }
  }

  const std::string keys[] = {"adapt", "ptpnc", "elman"};
  for (std::size_t m = 0; m < reports.size(); ++m) {
    const auto& r = reports[m];
    report.section(keys[m] + "_campaign", r.to_json());
    report.metric(keys[m] + "_clean_accuracy", r.clean_accuracy);
    report.metric(keys[m] + "_accuracy_at_max_fault",
                  r.cell(last_f, 0).stats.mean_accuracy);
    report.metric(keys[m] + "_accuracy_at_max_noise",
                  r.cell(0, last_n).stats.mean_accuracy);
    report.metric(keys[m] + "_fault_degradation_slope",
                  r.fault_degradation_slope);
    report.metric(keys[m] + "_noise_degradation_slope",
                  r.noise_degradation_slope);
  }
  report.metric("circuits_per_cell",
                static_cast<double>(config.circuits_per_cell));
  report.write();
  return 0;
}
