// Supporting experiment (Fig. 4, frequency-domain panels): magnitude
// response and cutoff frequencies of the printed first-order and
// second-order RC low-pass filters, obtained from AC (phasor) analysis of
// the actual netlists — the data the paper reads off SPICE.

#include <cmath>
#include <iostream>
#include <numbers>

#include "bench_common.hpp"
#include "pnc/circuit/ac.hpp"
#include "pnc/circuit/netlists.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;
  using namespace pnc::circuit;

  const double r = 800.0, c = 40e-6;  // printable mid-range design

  FilterNetlist first =
      build_first_order_filter(r, c, 0.0, [](double) { return 1.0; });
  FilterNetlist second = build_second_order_filter(
      r, c, r, c, 0.0, [](double) { return 1.0; });

  // ---- Bode magnitude table ----------------------------------------------
  const auto sweep1 = bode_sweep(first.netlist, first.output_node, 0.1, 1e4, 4);
  const auto sweep2 =
      bode_sweep(second.netlist, second.output_node, 0.1, 1e4, 4);
  util::Table bode({"f (Hz)", "|H1| (dB)", "|H2| (dB)"});
  for (std::size_t i = 0; i < sweep1.size(); ++i) {
    bode.add_row({util::format_fixed(sweep1[i].freq_hz, 2),
                  util::format_fixed(sweep1[i].magnitude_db, 2),
                  util::format_fixed(sweep2[i].magnitude_db, 2)});
  }
  std::cout << "Filter magnitude responses (R = 800 Ohm, C = 40 uF per "
               "stage)\n\n";
  bode.print(std::cout);
  bode.write_csv("filter_response.csv");

  // ---- Cutoffs and roll-off ----------------------------------------------
  const double analytic_fc = 1.0 / (2.0 * std::numbers::pi * r * c);
  const double fc1 =
      cutoff_frequency_hz(first.netlist, first.output_node, 0.01, 1e4);
  const double fc2 =
      cutoff_frequency_hz(second.netlist, second.output_node, 0.01, 1e4);
  const double slope1 =
      rolloff_db_per_decade(first.netlist, first.output_node, 1e3, 1e4);
  const double slope2 =
      rolloff_db_per_decade(second.netlist, second.output_node, 1e3, 1e4);

  util::Table summary({"Filter", "fc (-3 dB, Hz)", "Roll-off (dB/dec)"});
  summary.add_row({"1st order (pTPNC block)", util::format_fixed(fc1, 2),
                   util::format_fixed(slope1, 1)});
  summary.add_row({"2nd order (SO-LF)", util::format_fixed(fc2, 2),
                   util::format_fixed(slope2, 1)});
  bench::JsonReport report("filter_response");
  report.metric("analytic_fc_hz", analytic_fc);
  report.metric("first_order_fc_hz", fc1);
  report.metric("second_order_fc_hz", fc2);
  report.metric("first_order_rolloff_db_per_decade", slope1);
  report.metric("second_order_rolloff_db_per_decade", slope2);
  report.write();

  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\nAnalytic single-stage fc = 1/(2*pi*RC) = "
            << util::format_fixed(analytic_fc, 2)
            << " Hz. The SO-LF trades a lower effective cutoff for a "
               "twice-as-steep roll-off (-40 vs -20 dB/decade) — the "
               "\"sharper cutoff and better signal component separation\" "
               "the paper motivates in Sec. III.\n";
  return 0;
}
