#pragma once

#include <chrono>
#include <cstdlib>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pnc/train/experiment.hpp"
#include "pnc/util/atomic_file.hpp"
#include "pnc/util/simd.hpp"
#include "pnc/util/stats.hpp"
#include "pnc/util/thread_pool.hpp"

// Build metadata stamped into every report. The bench CMakeLists passes
// the real values; the fallbacks keep out-of-tree compiles working.
#ifndef PNC_BENCH_BUILD_TYPE
#define PNC_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef PNC_BENCH_CXX_FLAGS
#define PNC_BENCH_CXX_FLAGS ""
#endif

namespace pnc::bench {

/// Benchmark scale control: set PNC_QUICK=1 to shrink every experiment
/// (fewer seeds/epochs, shorter sequences) for smoke runs; the default
/// "full" scale regenerates the tables at the fidelity documented in
/// EXPERIMENTS.md.
inline bool quick_mode() {
  const char* env = std::getenv("PNC_QUICK");
  return env != nullptr && std::string(env) == "1";
}

/// Percentile helper shared with the library code (latency p50/p95/p99,
/// recovery distributions): numpy-default linear interpolation, empty
/// sample yields all zeros. Lives in pnc::util so non-bench code (the
/// calibration campaign) uses the same convention.
using util::percentiles;

/// Shared training protocol for all table/figure harnesses.
inline void apply_scale(train::ExperimentSpec& spec) {
  if (quick_mode()) {
    spec.num_seeds = 1;
    spec.top_k = 1;
    spec.train.max_epochs = 25;
    spec.train.patience = 6;
    spec.train.train_variation.monte_carlo_samples = 2;
    spec.eval_repeats = 2;
    spec.hidden_cap = 4;
    spec.sequence_length = 32;
  } else {
    spec.num_seeds = 3;
    spec.top_k = 3;
    spec.train.max_epochs = 150;
    spec.train.patience = 18;
    spec.train.train_variation.monte_carlo_samples = 3;
    spec.eval_repeats = 3;
    spec.hidden_cap = 10;
    spec.sequence_length = 64;
  }
}

/// Machine-readable run report written next to the CSV outputs as
/// `BENCH_<name>.json`. Records the pool size the run saw, total wall
/// seconds, per-phase timings and any scalar metrics (speedups, scores),
/// so CI and the analysis notebooks can diff runs without parsing logs.
class JsonReport {
 public:
  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  void phase_seconds(const std::string& phase, double seconds) {
    phases_.emplace_back(phase, seconds);
  }

  /// Embed a pre-serialized JSON value (object/array) under `key`, for
  /// structured results that don't fit scalar metrics (e.g. a
  /// reliability::RobustnessReport).
  void section(const std::string& key, std::string raw_json) {
    sections_.emplace_back(key, std::move(raw_json));
  }

  /// Run `fn()` and record its wall time as a phase.
  template <class F>
  void timed_phase(const std::string& phase, F&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    phase_seconds(phase, elapsed_since(t0));
  }

  double seconds_since_start() const { return elapsed_since(start_); }

  /// Write BENCH_<name>.json in the current directory. The report is
  /// staged to a temp file and renamed into place (util::atomic_write_file),
  /// so a reader (CI polling, a crashed run's leftovers) never sees a
  /// half-written file.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    util::atomic_write_file(path, [&](std::ostream& out) {
      out.precision(17);  // round-trip exact: bit-differences are visible
      out << "{\n";
      out << "  \"name\": \"" << name_ << "\",\n";
      out << "  \"threads\": " << util::hardware_threads() << ",\n";
      out << "  \"quick_mode\": " << (quick_mode() ? "true" : "false")
          << ",\n";
      // A timing number is only comparable against another run on the
      // same machine shape: record where and how this binary ran.
      out << "  \"machine\": {\n";
      out << "    \"hardware_concurrency\": "
          << std::thread::hardware_concurrency() << ",\n";
      out << "    \"pool_threads\": " << util::hardware_threads() << ",\n";
      out << "    \"simd\": \"" << simd::kind() << "\",\n";
      out << "    \"compiler\": \"" << compiler_id() << "\",\n";
      out << "    \"build_type\": \"" << PNC_BENCH_BUILD_TYPE << "\",\n";
      out << "    \"cxx_flags\": \"" << PNC_BENCH_CXX_FLAGS << "\"\n";
      out << "  },\n";
      out << "  \"wall_seconds\": " << seconds_since_start() << ",\n";
      out << "  \"phases\": {";
      write_pairs(out, phases_);
      out << "},\n";
      for (const auto& [key, raw] : sections_) {
        out << "  \"" << key << "\": " << raw << ",\n";
      }
      out << "  \"metrics\": {";
      write_pairs(out, metrics_);
      out << "}\n";
      out << "}\n";
    });
  }

 private:
  static std::string compiler_id() {
#if defined(__clang__)
    return "clang " + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__);
#elif defined(__GNUC__)
    return "gcc " + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__);
#else
    return "unknown";
#endif
  }

  static double elapsed_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }

  static void write_pairs(
      std::ostream& out,
      const std::vector<std::pair<std::string, double>>& pairs) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i > 0) out << ",";
      out << "\n    \"" << pairs[i].first << "\": " << pairs[i].second;
    }
    if (!pairs.empty()) out << "\n  ";
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace pnc::bench
