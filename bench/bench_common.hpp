#pragma once

#include <cstdlib>
#include <string>

#include "pnc/train/experiment.hpp"

namespace pnc::bench {

/// Benchmark scale control: set PNC_QUICK=1 to shrink every experiment
/// (fewer seeds/epochs, shorter sequences) for smoke runs; the default
/// "full" scale regenerates the tables at the fidelity documented in
/// EXPERIMENTS.md.
inline bool quick_mode() {
  const char* env = std::getenv("PNC_QUICK");
  return env != nullptr && std::string(env) == "1";
}

/// Shared training protocol for all table/figure harnesses.
inline void apply_scale(train::ExperimentSpec& spec) {
  if (quick_mode()) {
    spec.num_seeds = 1;
    spec.top_k = 1;
    spec.train.max_epochs = 25;
    spec.train.patience = 6;
    spec.train.train_variation.monte_carlo_samples = 2;
    spec.eval_repeats = 2;
    spec.hidden_cap = 4;
    spec.sequence_length = 32;
  } else {
    spec.num_seeds = 3;
    spec.top_k = 3;
    spec.train.max_epochs = 150;
    spec.train.patience = 18;
    spec.train.train_variation.monte_carlo_samples = 3;
    spec.eval_repeats = 3;
    spec.hidden_cap = 10;
    spec.sequence_length = 64;
  }
}

}  // namespace pnc::bench
