// Fault/noise-aware training (FANT) ablation: does hardening the
// Monte-Carlo training loop with sampled defects and sensor corruption
// buy robustness at deployment time?
//
// For each dataset we train two ADAPT-pNC models from the same
// initialization — variation-aware only (VA) vs variation-aware plus
// FANT — then push both through the identical reliability campaign grid
// (fault x noise severity sweep from bench_reliability). The report
// compares clean accuracy (the price paid) against accuracy under
// defects and corrupted sensors (the robustness bought).

#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/reliability/campaign.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  const std::vector<std::string> datasets = {"PowerCons", "Slope", "GPMVF"};

  // Unit-severity specs for the campaign grid (matching bench_reliability)
  // and the — deliberately milder — specs FANT trains against.
  const reliability::FaultSpec campaign_fault = reliability::FaultSpec::mixed(1.0);
  const reliability::NoiseSpec campaign_noise = reliability::NoiseSpec::sensor(0.2);
  train::FantConfig fant;
  fant.faults = reliability::FaultSpec::mixed(0.05);
  fant.fault_probability = 0.5;
  fant.noise = reliability::NoiseSpec::sensor(0.1);

  reliability::CampaignConfig campaign;
  campaign.circuits_per_cell = bench::quick_mode() ? 4 : 16;
  campaign.seed = 17;

  bench::JsonReport report("fant");
  util::Table table({"dataset", "model", "clean acc", "acc @ max fault",
                     "acc @ max noise", "fault slope"});

  for (const std::string& dataset : datasets) {
    train::ExperimentSpec spec = train::adapt_spec(dataset);
    bench::apply_scale(spec);

    const data::Dataset ds = data::make_dataset(dataset, spec.data_seed,
                                                spec.sequence_length);
    const auto classes = static_cast<std::size_t>(ds.num_classes);

    // Same seed -> same initialization: the ablation isolates the
    // training objective, not the draw of initial components.
    auto va_model = train::make_model(spec, classes, ds.sample_period, 7);
    auto fant_model = train::make_model(spec, classes, ds.sample_period, 7);

    train::TrainConfig va_config = spec.train;
    va_config.seed = 7;
    train::TrainConfig fant_config = va_config;
    fant_config.fant = fant;

    report.timed_phase(dataset + "_train", [&] {
      // The two trainings are independent; their nested MC fan-outs
      // degrade to serial inline when the pool is busy.
      util::global_pool().parallel_for(2, [&](std::size_t i) {
        if (i == 0) {
          std::cerr << "[fant] " << dataset << ": training VA-only...\n";
          (void)train::train(*va_model, ds, va_config);
        } else {
          std::cerr << "[fant] " << dataset << ": training VA+FANT...\n";
          (void)train::train(*fant_model, ds, fant_config);
        }
      });
    });

    reliability::RobustnessReport va_report, fant_report;
    report.timed_phase(dataset + "_campaigns", [&] {
      va_report = reliability::run_campaign(*va_model, ds.test,
                                            campaign_fault, campaign_noise,
                                            campaign);
      fant_report = reliability::run_campaign(*fant_model, ds.test,
                                              campaign_fault, campaign_noise,
                                              campaign);
    });

    const std::size_t last_f = campaign.fault_severities.size() - 1;
    const std::size_t last_n = campaign.noise_severities.size() - 1;
    const struct {
      const char* key;
      const reliability::RobustnessReport* r;
    } rows[] = {{"va", &va_report}, {"fant", &fant_report}};
    for (const auto& row : rows) {
      const auto& r = *row.r;
      table.add_row({dataset, row.key, util::format_fixed(r.clean_accuracy, 3),
                     util::format_fixed(
                         r.cell(last_f, 0).stats.mean_accuracy, 3),
                     util::format_fixed(
                         r.cell(0, last_n).stats.mean_accuracy, 3),
                     util::format_fixed(r.fault_degradation_slope, 2)});
      const std::string prefix = dataset + "_" + row.key;
      report.section(prefix + "_campaign", r.to_json());
      report.metric(prefix + "_clean_accuracy", r.clean_accuracy);
      report.metric(prefix + "_accuracy_at_max_fault",
                    r.cell(last_f, 0).stats.mean_accuracy);
      report.metric(prefix + "_accuracy_at_max_noise",
                    r.cell(0, last_n).stats.mean_accuracy);
      report.metric(prefix + "_fault_degradation_slope",
                    r.fault_degradation_slope);
      report.metric(prefix + "_noise_degradation_slope",
                    r.noise_degradation_slope);
    }

    std::ofstream csv("fant_" + dataset + ".csv");
    va_report.write_csv(csv, /*header=*/true);
    fant_report.write_csv(csv, /*header=*/false);
  }

  std::cout << "\nFANT ablation (" << campaign.circuits_per_cell
            << " circuits per severity cell)\n\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: VA+FANT gives up little or no clean "
               "accuracy but degrades more slowly along both campaign "
               "axes, because training already averaged over defective "
               "circuits and corrupted sensors (the same mechanism that "
               "makes variation-aware training robust to printing "
               "spread).\n";

  report.metric("circuits_per_cell",
                static_cast<double>(campaign.circuits_per_cell));
  report.write();
  return 0;
}
