// Per-device SO-filter calibration (pnc::calib, DESIGN.md §12): how much
// accuracy does a tiny on-device calibration pass claw back on defective,
// noisy circuits that variation-aware (VA) and fault/noise-aware (FANT)
// training alone could not save?
//
// Protocol: train VA and VA+FANT ADAPT-pNC models from the same
// initialization (bench_fant's protocol), then sweep the PR 3 fault x
// noise grid. Each cell fabricates several circuits (variation stamp +
// defect mask + corrupted sensors) and scores four configurations:
//
//   clean     — the FANT model's un-faulted ceiling for the same stamp
//   va        — VA-only model on the defective circuit (no calibration)
//   fant      — VA+FANT model on the defective circuit (no calibration)
//   fant+cal  — the same device after calibrate(): a few Adam steps on
//               only the SO-filter RC deltas against a small calibration
//               set drawn from the training split, corrupted exactly like
//               the deployment inputs
//
// The headline metric is recovery_gain = fant+cal − fant per fabricated
// circuit; on faulted cells its distribution (p10/p50/p90 via
// util::percentiles) should sit at or above zero — calibration composes
// with FANT, it does not replace it. A second axis re-runs the
// aging-drift sweep (bench_aging_drift's DriftModel) with calibration:
// the drifted device is exactly the regime where shifting RC products in
// log space can follow the aging trend. Outputs: calibration_<ds>.csv per
// dataset, calibration_aging_drift.csv for the drift axis, and
// BENCH_calibration.json.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pnc/calib/calibrator.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/reliability/fault.hpp"
#include "pnc/reliability/noise.hpp"
#include "pnc/util/table.hpp"
#include "pnc/variation/drift.hpp"

namespace {

using namespace pnc;

// Engine-path accuracy of one stamped circuit (stamp at batch 1 +
// broadcast: the serving realization) on a prepared split.
double stamped_accuracy(const infer::Engine& engine,
                        const variation::VariationSpec& spec,
                        std::uint64_t seed, const data::Split& split,
                        util::ThreadPool& pool) {
  infer::Plan plan = engine.make_plan();
  util::Rng rng(seed);
  engine.stamp(plan, spec, rng, 1);
  engine.broadcast_batch(plan, split.size());
  ad::Tensor logits;
  engine.forward(plan, split.inputs, logits, pool);
  const std::size_t classes = logits.cols();
  std::size_t hits = 0;
  for (std::size_t r = 0; r < split.size(); ++r) {
    const double* row = logits.data().data() + r * classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    hits += static_cast<std::size_t>(split.labels[r]) == best;
  }
  return static_cast<double>(hits) / static_cast<double>(split.size());
}

// First `count` rows of a split — the deployed device's calibration set.
data::Split head_rows(const data::Split& split, std::size_t count) {
  count = std::min(count, split.size());
  data::Split out;
  out.inputs = ad::Tensor::uninitialized(count, split.length());
  std::copy_n(split.inputs.data().data(), count * split.length(),
              out.inputs.data().data());
  out.labels.assign(split.labels.begin(),
                    split.labels.begin() + static_cast<long>(count));
  return out;
}

// What the fabricated circuit actually reads: the series after the
// device's sensor defects and this deployment's input corruption.
data::Split corrupted(const data::Split& split,
                      const reliability::FaultMask& mask,
                      const reliability::NoiseSpec& noise,
                      std::uint64_t noise_seed) {
  data::Split out;
  out.inputs = reliability::corrupt_inputs(
      reliability::apply_sensor_faults(split.inputs, mask), noise, noise_seed);
  out.labels = split.labels;
  return out;
}

// Calibration set for one device: each reference series is read `reads`
// times through the defective sensor, each read with an independent noise
// realization. Averaging over reads keeps the handful of RC deltas from
// chasing one particular noise draw (they must fix the circuit, not the
// weather); a noise-free spec collapses to a single read.
data::Split calibration_reads(const data::Split& base,
                              const reliability::FaultMask& mask,
                              const reliability::NoiseSpec& noise,
                              std::uint64_t seed, std::size_t reads) {
  if (!noise.any()) reads = 1;
  const std::size_t rows = base.size();
  const std::size_t steps = base.length();
  data::Split out;
  out.inputs = ad::Tensor::uninitialized(rows * reads, steps);
  out.labels.resize(rows * reads);
  for (std::size_t k = 0; k < reads; ++k) {
    const data::Split read = corrupted(base, mask, noise, seed + k);
    std::copy_n(read.inputs.data().data(), rows * steps,
                out.inputs.data().data() + k * rows * steps);
    std::copy_n(read.labels.begin(), rows, out.labels.begin() + k * rows);
  }
  return out;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const std::vector<std::string> datasets =
      quick ? std::vector<std::string>{"PowerCons"}
            : std::vector<std::string>{"PowerCons", "GPMVF"};
  const std::vector<double> fault_rates =
      quick ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.05, 0.1};
  const std::vector<double> noise_severities =
      quick ? std::vector<double>{0.0, 1.0}
            : std::vector<double>{0.0, 0.5, 1.0};
  const std::size_t circuits = quick ? 2 : 4;
  const std::size_t calib_rows = quick ? 48 : 96;
  const std::size_t calib_reads = 2;  // noisy reads per calibration series

  const reliability::NoiseSpec noise_unit = reliability::NoiseSpec::sensor(0.2);
  const variation::VariationSpec print_spec =
      variation::VariationSpec::printing(0.10);

  calib::CalibConfig calib_config;
  calib_config.iterations = quick ? 10 : 24;
  calib_config.delta_decay = 0.05;  // trust region: healthy devices stay put

  train::FantConfig fant;
  fant.faults = reliability::FaultSpec::mixed(0.05);
  fant.fault_probability = 0.5;
  fant.noise = reliability::NoiseSpec::sensor(0.1);

  bench::JsonReport report("calibration");
  util::ThreadPool& pool = util::global_pool();
  util::Table table({"dataset", "fault", "noise", "clean", "va", "fant",
                     "fant+cal", "gain"});
  std::vector<double> faulted_gains;  // fant+cal − fant on defective cells

  for (std::size_t d = 0; d < datasets.size(); ++d) {
    const std::string& dataset = datasets[d];
    train::ExperimentSpec spec = train::adapt_spec(dataset);
    bench::apply_scale(spec);

    const data::Dataset ds =
        data::make_dataset(dataset, spec.data_seed, spec.sequence_length);
    const auto classes = static_cast<std::size_t>(ds.num_classes);

    // Same seed -> same initialization: the comparison isolates training
    // objective and calibration, not the initial component draw.
    auto va_model = train::make_model(spec, classes, ds.sample_period, 7);
    auto fant_model = train::make_model(spec, classes, ds.sample_period, 7);
    train::TrainConfig va_config = spec.train;
    va_config.seed = 7;
    train::TrainConfig fant_config = va_config;
    fant_config.fant = fant;

    report.timed_phase(dataset + "_train", [&] {
      util::global_pool().parallel_for(2, [&](std::size_t i) {
        if (i == 0) {
          std::cerr << "[calib] " << dataset << ": training VA-only...\n";
          (void)train::train(*va_model, ds, va_config);
        } else {
          std::cerr << "[calib] " << dataset << ": training VA+FANT...\n";
          (void)train::train(*fant_model, ds, fant_config);
        }
      });
    });

    const infer::Engine va_engine = infer::Engine::compile(*va_model);
    const infer::Engine fant_engine = infer::Engine::compile(*fant_model);

    // Variation seeds depend only on the circuit index, so every cell
    // defects and calibrates the *same* fabricated devices.
    std::vector<std::uint64_t> seeds(circuits);
    for (std::size_t c = 0; c < circuits; ++c) {
      seeds[c] = 1000 * (d + 1) + 17 * c + 3;
    }
    std::vector<double> clean_acc(circuits);
    for (std::size_t c = 0; c < circuits; ++c) {
      clean_acc[c] =
          stamped_accuracy(fant_engine, print_spec, seeds[c], ds.test, pool);
    }
    const double clean_mean =
        util::mean({clean_acc.data(), clean_acc.size()});
    report.metric(dataset + "_clean_accuracy", clean_mean);

    const data::Split calib_base = head_rows(ds.train, calib_rows);

    report.timed_phase(dataset + "_grid", [&] {
      for (const double rate : fault_rates) {
        for (const double severity : noise_severities) {
          const reliability::FaultSpec fault_spec =
              reliability::FaultSpec::mixed(rate);
          const reliability::NoiseSpec noise = noise_unit.scaled(severity);

          std::vector<double> va_acc(circuits), fant_acc(circuits),
              cal_acc(circuits);
          for (std::size_t c = 0; c < circuits; ++c) {
            const std::uint64_t vseed = seeds[c];
            const std::uint64_t fault_seed = vseed ^ 0x6661756c74ULL;
            const reliability::FaultMask mask =
                reliability::FaultInjector(fault_spec, fault_seed)
                    .draw(fant_engine);

            // The calibration set and the held-out evaluation pass
            // through the same defective sensors but independent noise
            // realizations — calibration never sees the test noise.
            const data::Split calib_split = calibration_reads(
                calib_base, mask, noise, vseed * 16 + 1, calib_reads);
            const data::Split eval_split =
                corrupted(ds.test, mask, noise, vseed * 16 + 11);

            infer::Engine faulted_va = va_engine;
            reliability::apply_faults(faulted_va, mask);
            va_acc[c] = stamped_accuracy(faulted_va, print_spec, vseed,
                                         eval_split, pool);

            infer::Engine faulted_fant = fant_engine;
            reliability::apply_faults(faulted_fant, mask);
            calib::Device device(faulted_fant, print_spec, vseed);
            device.loss(eval_split, pool, &fant_acc[c]);
            (void)calib::calibrate(device, calib_split, calib_config);
            device.loss(eval_split, pool, &cal_acc[c]);

            if (rate > 0.0 || severity > 0.0) {
              faulted_gains.push_back(cal_acc[c] - fant_acc[c]);
            }
          }

          const double va_mean = util::mean({va_acc.data(), circuits});
          const double fant_mean = util::mean({fant_acc.data(), circuits});
          const double cal_mean = util::mean({cal_acc.data(), circuits});
          table.add_row({dataset, util::format_fixed(rate, 2),
                         util::format_fixed(severity, 1),
                         util::format_fixed(clean_mean, 3),
                         util::format_fixed(va_mean, 3),
                         util::format_fixed(fant_mean, 3),
                         util::format_fixed(cal_mean, 3),
                         util::format_fixed(cal_mean - fant_mean, 3)});
          const std::string key = dataset + "_f" + util::format_fixed(rate, 2) +
                                  "_n" + util::format_fixed(severity, 1);
          report.metric(key + "_va", va_mean);
          report.metric(key + "_fant", fant_mean);
          report.metric(key + "_fant_cal", cal_mean);
          report.metric(key + "_gain", cal_mean - fant_mean);
        }
      }
    });
  }

  std::cout << "\nPer-device calibration on the fault x noise grid ("
            << circuits << " circuits per cell, " << calib_rows
            << " calibration series x " << calib_reads << " noisy reads, "
            << calib_config.iterations
            << " Adam steps on the SO-filter deltas only)\n\n";
  table.print(std::cout);
  table.write_csv("calibration_" + datasets[0] + ".csv");

  // Aging-drift axis (bench_aging_drift's setting, now with calibration):
  // the device's RC products drift over its lifetime, and the calibrator
  // shifts exactly those products in log space — so this is the regime
  // where a handful of per-channel deltas should track the damage.
  // SmoothS is the dataset where that sweep shows real degradation.
  const std::vector<double> ages =
      quick ? std::vector<double>{0.0, 2.0, 4.0}
            : std::vector<double>{0.0, 1.0, 2.0, 4.0};
  auto printing = std::make_shared<variation::UniformVariation>(0.10);
  variation::DriftModel::Config drift;
  drift.trend_per_ref = 0.08;
  drift.spread_per_ref = 0.06;

  const std::string drift_dataset = "SmoothS";
  train::ExperimentSpec drift_spec_exp = train::adapt_spec(drift_dataset);
  bench::apply_scale(drift_spec_exp);
  const data::Dataset drift_ds = data::make_dataset(
      drift_dataset, drift_spec_exp.data_seed, drift_spec_exp.sequence_length);
  const data::Split drift_calib = head_rows(drift_ds.train, calib_rows);

  std::cerr << "[calib] " << drift_dataset
            << ": training VA+FANT for the drift axis...\n";
  auto drift_model = train::make_model(
      drift_spec_exp, static_cast<std::size_t>(drift_ds.num_classes),
      drift_ds.sample_period, 7);
  train::TrainConfig drift_train = drift_spec_exp.train;
  drift_train.seed = 7;
  drift_train.fant = fant;
  report.timed_phase(drift_dataset + "_train", [&] {
    (void)train::train(*drift_model, drift_ds, drift_train);
  });
  const infer::Engine drift_engine = infer::Engine::compile(*drift_model);

  util::Table drift_table(
      {"Device age (t/t_ref)", "uncalibrated acc", "calibrated acc", "gain"});
  report.timed_phase("aging_drift", [&] {
    for (std::size_t a = 0; a < ages.size(); ++a) {
      const double age = ages[a];
      const variation::VariationSpec eval =
          variation::drift_spec(printing, drift, age);
      std::vector<double> uncal(circuits), cal(circuits);
      for (std::size_t c = 0; c < circuits; ++c) {
        const std::uint64_t vseed = 9000 + 23 * c;
        calib::Device device(drift_engine, eval, vseed);
        device.loss(drift_ds.test, pool, &uncal[c]);
        (void)calib::calibrate(device, drift_calib, calib_config);
        device.loss(drift_ds.test, pool, &cal[c]);
      }
      const double uncal_mean = util::mean({uncal.data(), circuits});
      const double cal_mean = util::mean({cal.data(), circuits});
      drift_table.add_row({util::format_fixed(age, 1),
                           util::format_fixed(uncal_mean, 3),
                           util::format_fixed(cal_mean, 3),
                           util::format_fixed(cal_mean - uncal_mean, 3)});
      const std::string key = "drift_age" + util::format_fixed(age, 1);
      report.metric(key + "_uncalibrated", uncal_mean);
      report.metric(key + "_calibrated", cal_mean);
    }
  });

  std::cout << "\nCalibration over device lifetime on " << drift_dataset
            << " (as-printed ±10% variation composed with aging drift; "
               "calibration re-fits only the SO-filter RC deltas)\n\n";
  drift_table.print(std::cout);
  drift_table.write_csv("calibration_aging_drift.csv");

  // Recovery distribution across every defective fabricated circuit: the
  // acceptance bar is that calibration does not hurt (p10 ≈ 0 or above)
  // and typically helps (p50 > 0).
  const std::vector<double> ps =
      util::percentiles(faulted_gains, {10.0, 50.0, 90.0});
  report.metric("recovery_gain_p10", ps[0]);
  report.metric("recovery_gain_p50", ps[1]);
  report.metric("recovery_gain_p90", ps[2]);
  report.metric("faulted_circuits", static_cast<double>(faulted_gains.size()));
  report.metric("circuits_per_cell", static_cast<double>(circuits));
  std::cout << "\nrecovery gain (fant+cal − fant) over " << faulted_gains.size()
            << " defective circuits: p10=" << util::format_fixed(ps[0], 3)
            << " p50=" << util::format_fixed(ps[1], 3)
            << " p90=" << util::format_fixed(ps[2], 3) << "\n";

  report.write();
  return 0;
}
