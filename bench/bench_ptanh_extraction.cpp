// Supporting experiment: transistor-level extraction of the ptanh
// activation (Fig. 3(b)). The paper obtains the ptanh parameters η from
// SPICE characterization of the printed EGT stage; here the stage is
// simulated with the in-repo nonlinear MNA solver and η fitted by least
// squares, across a spread of component values.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/circuit/ptanh_extract.hpp"
#include "pnc/util/rng.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;
  using namespace pnc::circuit;

  util::Table table({"R1 (kOhm)", "R2 (kOhm)", "T1 scale", "T2 scale",
                     "eta1", "eta2", "eta3", "eta4", "R^2"});

  util::Rng rng(11);
  double worst_r2 = 1.0;
  for (int trial = 0; trial < 12; ++trial) {
    PtanhComponents q;
    q.r1 = rng.uniform(150e3, 350e3);
    q.r2 = rng.uniform(150e3, 350e3);
    q.t1_scale = rng.uniform(0.6, 1.6);
    q.t2_scale = rng.uniform(0.6, 1.6);
    const PtanhExtraction ex = extract_ptanh(q, 61);
    worst_r2 = std::min(worst_r2, ex.fit.r_squared);
    table.add_row({util::format_fixed(q.r1 / 1e3, 0),
                   util::format_fixed(q.r2 / 1e3, 0),
                   util::format_fixed(q.t1_scale, 2),
                   util::format_fixed(q.t2_scale, 2),
                   util::format_fixed(ex.fit.params.eta1, 3),
                   util::format_fixed(ex.fit.params.eta2, 3),
                   util::format_fixed(ex.fit.params.eta3, 3),
                   util::format_fixed(ex.fit.params.eta4, 2),
                   util::format_fixed(ex.fit.r_squared, 5)});
  }

  std::cout << "ptanh parameter extraction from transistor-level simulation "
               "(12 random printable component sets)\n\n";
  table.print(std::cout);
  table.write_csv("ptanh_extraction.csv");
  std::cout << "\nWorst-case R^2 of the analytic ptanh form against the "
               "simulated stage: "
            << util::format_fixed(worst_r2, 5)
            << " — the behavioural model used during training is a "
               "faithful image of the circuit.\n";

  // One full transfer curve for plotting.
  const PtanhExtraction nominal = extract_ptanh(PtanhComponents{}, 61);
  util::Table curve({"V_in", "V_out (simulated)", "V_out (fitted)"});
  for (std::size_t i = 0; i < nominal.inputs.size(); i += 5) {
    curve.add_row({util::format_fixed(nominal.inputs[i], 3),
                   util::format_fixed(nominal.outputs[i], 4),
                   util::format_fixed(
                       nominal.fit.params(nominal.inputs[i]), 4)});
  }
  std::cout << "\nNominal-stage transfer curve:\n\n";
  curve.print(std::cout);

  bench::JsonReport report("ptanh_extraction");
  report.metric("worst_r_squared", worst_r2);
  report.metric("nominal_r_squared", nominal.fit.r_squared);
  report.metric("nominal_eta1", nominal.fit.params.eta1);
  report.metric("nominal_eta2", nominal.fit.params.eta2);
  report.metric("nominal_eta3", nominal.fit.params.eta3);
  report.metric("nominal_eta4", nominal.fit.params.eta4);
  report.write();
  return 0;
}
