// Ablation: manufacturing yield vs process quality.
//
// The paper's robustness story in fab terms: for a fixed accuracy
// threshold, how many of the printed circuits coming off the line are
// usable? We train the no-variation-aware pTPNC baseline and the
// robustness-aware ADAPT-pNC on the same dataset and sweep the process
// variation delta, reporting Monte-Carlo yield for both.

#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "pnc/hardware/yield.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  const std::string dataset = "GPMVF";
  const std::vector<double> deltas = {0.0, 0.05, 0.10, 0.15, 0.20};

  train::ExperimentSpec adapt_spec = train::adapt_spec(dataset);
  bench::apply_scale(adapt_spec);

  const data::Dataset ds = data::make_dataset(dataset, adapt_spec.data_seed,
                                              adapt_spec.sequence_length);
  const auto classes = static_cast<std::size_t>(ds.num_classes);

  bench::JsonReport report("yield_analysis");

  // The two models are independent — train them concurrently. Each train()
  // call's own Monte-Carlo fan-out then runs serially inline (nested
  // parallel sections degrade to serial), so this is a clean 2-way split.
  auto baseline = core::make_baseline_ptpnc(classes, ds.sample_period, 7);
  auto adapt = core::make_adapt_pnc(classes, ds.sample_period, 7,
                                    adapt_spec.hidden_cap);
  train::TrainConfig plain = adapt_spec.train;
  plain.train_variation = variation::VariationSpec::none();
  plain.augmentation.reset();

  report.timed_phase("train_both", [&] {
    util::global_pool().parallel_for(2, [&](std::size_t i) {
      if (i == 0) {
        std::cerr << "[yield] training baseline...\n";
        (void)train::train(*baseline, ds, plain);
      } else {
        std::cerr << "[yield] training ADAPT-pNC...\n";
        (void)train::train(*adapt, ds, adapt_spec.train);
      }
    });
  });

  hardware::YieldConfig config;
  config.num_circuits = bench::quick_mode() ? 10 : 40;
  config.accuracy_threshold = 0.7;  // application requirement (2 classes)

  std::vector<hardware::YieldResult> base_curve, adapt_curve;
  report.timed_phase("yield_curves", [&] {
    base_curve =
        hardware::yield_vs_variation(*baseline, ds.test, deltas, config);
    adapt_curve =
        hardware::yield_vs_variation(*adapt, ds.test, deltas, config);
  });

  util::Table table({"delta", "pTPNC yield", "pTPNC mean acc",
                     "ADAPT yield", "ADAPT mean acc"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    table.add_row({util::format_fixed(deltas[i] * 100.0, 0) + "%",
                   util::format_fixed(base_curve[i].yield, 2),
                   util::format_fixed(base_curve[i].mean_accuracy, 3),
                   util::format_fixed(adapt_curve[i].yield, 2),
                   util::format_fixed(adapt_curve[i].mean_accuracy, 3)});
  }

  std::cout << "\nManufacturing yield vs process variation on " << dataset
            << " (accuracy threshold "
            << util::format_fixed(config.accuracy_threshold, 2) << ", "
            << config.num_circuits << " Monte-Carlo fabrications)\n\n";
  table.print(std::cout);
  table.write_csv("yield_analysis.csv");
  std::cout << "\nExpected shape: both start high at delta = 0; the "
               "no-variation-aware baseline's yield collapses as delta "
               "grows while the VA-trained ADAPT-pNC degrades gracefully.\n";

  report.metric("baseline_yield_at_max_delta", base_curve.back().yield);
  report.metric("adapt_yield_at_max_delta", adapt_curve.back().yield);
  report.metric("num_circuits", static_cast<double>(config.num_circuits));

  // Compiled-engine payoff on the yield workload: the same Monte-Carlo
  // estimate through the graph-based forward vs the stamped engine plans.
  // The engine is bit-compatible, so the two estimates must agree exactly.
  const variation::VariationSpec speedup_spec =
      variation::VariationSpec::printing(0.10);
  hardware::YieldConfig graph_config = config;
  graph_config.use_engine = false;
  double engine_seconds = 0.0, graph_seconds = 0.0;
  hardware::YieldResult engine_result, graph_result;
  report.timed_phase("yield_engine_vs_graph", [&] {
    auto once = [&](const hardware::YieldConfig& c,
                    hardware::YieldResult& out) {
      const auto t0 = std::chrono::steady_clock::now();
      out = hardware::estimate_yield(*adapt, ds.test, speedup_spec, c);
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    graph_seconds = once(graph_config, graph_result);
    engine_seconds = once(config, engine_result);
  });
  std::cout << "\nEngine vs graph on the yield workload ("
            << config.num_circuits
            << " circuits): " << util::format_fixed(graph_seconds, 3)
            << " s -> " << util::format_fixed(engine_seconds, 3) << " s ("
            << util::format_fixed(graph_seconds / engine_seconds, 2)
            << "x)\n";
  report.metric("engine_yield_seconds", engine_seconds);
  report.metric("graph_yield_seconds", graph_seconds);
  report.metric("engine_speedup", graph_seconds / engine_seconds);
  report.metric("engine_vs_graph_yield_diff",
                std::abs(engine_result.yield - graph_result.yield) +
                    std::abs(engine_result.mean_accuracy -
                             graph_result.mean_accuracy));
  report.write();
  return 0;
}
