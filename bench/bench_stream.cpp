// Streaming-inference bench (ROADMAP: streaming workloads). Four
// in-process phases plus an optional external-process one:
//
//  1. train         — fit a small ADAPT-pNC on PowerCons; the streaming
//                     phases below all classify continuous signals built
//                     from that dataset's generators.
//  2. parity        — the stride=window reset-mode gate: a StreamSession
//                     replaying each window from the stamped h0 must
//                     reproduce Engine::forward's logits bit-identically
//                     (metric parity_max_abs_diff, asserted == 0).
//  3. stride sweep  — detection latency / miss rate / window accuracy vs
//                     stride (window, W/2, W/4, W/8), on the clean signal
//                     and under streaming sensor faults that span window
//                     boundaries (NoiseTimeline).
//  4. serve         — N long-lived sessions fed chunk-by-chunk through
//                     pnc::serve vs the same windows as stateless
//                     requests: windows/sec for both, zero errors.
//  5. --pipe-cmd C  — spawn `C` (a pnc_serve command line) and drive the
//                     session protocol over its stdin/stdout: open a
//                     reset-mode and a carry-mode session, stream the
//                     signal in chunks, and require the returned window
//                     logits and events to match an in-process
//                     StreamSession over the same checkpoint bitwise.
//                     Used by the stream-smoke CI job.
//
// Writes BENCH_stream.json: parity, latency-vs-stride and
// accuracy-vs-stride curves, and session-vs-stateless serving rates.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "pnc/core/model.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/serve/json.hpp"
#include "pnc/serve/server.hpp"
#include "pnc/stream/session.hpp"
#include "pnc/stream/signal.hpp"
#include "pnc/util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using pnc::serve::Request;
using pnc::serve::Response;
using pnc::serve::Server;
using pnc::serve::ServerConfig;
using pnc::serve::Status;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Stamp one clean batch-1 plan the way pnc_serve's plan cache does
/// (Rng(seed), batch 1), so in-process sessions and served sessions run
/// the identical circuit.
pnc::infer::Plan stamped_plan(const pnc::infer::Engine& engine,
                              std::uint64_t seed) {
  pnc::infer::Plan plan = engine.make_plan();
  pnc::util::Rng rng(seed);
  engine.stamp(plan, pnc::variation::VariationSpec::none(), rng, 1);
  return plan;
}

// ---------------------------------------------------------------------------
// Phase 3 scoring: one session run over a signal at one stride.

struct StrideResult {
  std::size_t stride = 0;
  std::size_t windows = 0;
  double accuracy = 0.0;        // aligned windows predicted correctly
  std::size_t straddling = 0;   // windows spanning a change (not scored)
  std::size_t detected = 0;
  std::size_t missed = 0;
  std::size_t spurious = 0;
  double mean_latency = 0.0;    // samples, change -> confirming window end
  double max_latency = 0.0;
};

StrideResult run_stride(const pnc::infer::Engine& engine,
                        const pnc::infer::Plan& plan,
                        const pnc::stream::ContinuousSignal& signal,
                        const std::vector<double>& samples,
                        std::size_t window, std::size_t stride) {
  pnc::stream::StreamConfig config;
  config.window = window;
  config.stride = stride;
  config.policy = pnc::stream::StatePolicy::kCarry;
  config.confirm_windows = 2;
  pnc::stream::StreamSession session(engine, plan, config);
  session.feed(samples);

  StrideResult r;
  r.stride = stride;
  const auto windows = session.take_windows();
  r.windows = windows.size();
  std::size_t scored = 0;
  std::size_t correct = 0;
  for (const auto& w : windows) {
    // Score only windows that lie inside one class segment; a window
    // straddling a change has no single ground-truth label.
    if (signal.label_at(w.begin) != signal.label_at(w.end - 1)) {
      ++r.straddling;
      continue;
    }
    ++scored;
    if (static_cast<int>(w.predicted) == signal.label_at(w.begin)) ++correct;
  }
  r.accuracy = scored > 0
                   ? static_cast<double>(correct) / static_cast<double>(scored)
                   : 0.0;
  const auto stats = pnc::stream::match_events(
      session.take_events(), signal.changes, samples.size());
  r.detected = stats.detected;
  r.missed = stats.missed;
  r.spurious = stats.spurious;
  r.mean_latency = stats.mean_latency;
  r.max_latency = stats.max_latency;
  return r;
}

std::string stride_result_json(const StrideResult& r, const char* condition) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"condition\":\"" << condition << "\",\"stride\":" << r.stride
      << ",\"windows\":" << r.windows << ",\"accuracy\":" << r.accuracy
      << ",\"straddling\":" << r.straddling << ",\"detected\":" << r.detected
      << ",\"missed\":" << r.missed << ",\"spurious\":" << r.spurious
      << ",\"mean_latency_samples\":" << r.mean_latency
      << ",\"max_latency_samples\":" << r.max_latency << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Phase 4: long-lived serve sessions vs stateless requests.

struct ServeResult {
  double session_windows_per_sec = 0.0;
  double stateless_windows_per_sec = 0.0;
  std::uint64_t errors = 0;
  std::uint64_t session_windows = 0;
};

ServeResult run_serve(std::shared_ptr<const pnc::infer::Engine> engine,
                      const std::vector<double>& samples, std::size_t window,
                      std::size_t sessions, std::size_t shards) {
  ServeResult result;
  ServerConfig config;
  config.shards = shards;
  config.max_batch = 8;
  config.batch_deadline_us = 50.0;
  config.queue_capacity = 4096;
  Server server(config);
  server.load_model("default", {std::move(engine)});
  server.start();

  std::atomic<std::uint64_t> errors{0};

  // Sessions: one feeder thread each (chunks of one session must be
  // submitted in order), every chunk `window` samples.
  {
    for (std::size_t s = 0; s < sessions; ++s) {
      pnc::serve::SessionConfig sc;
      sc.stream.window = window;
      sc.stream.stride = window / 2;
      std::string error;
      if (server.open_session("s" + std::to_string(s), sc, &error) !=
          Status::kOk) {
        throw std::runtime_error("open_session: " + error);
      }
    }
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t done = 0;
    std::size_t chunks_total = 0;
    const auto t0 = Clock::now();
    std::vector<std::thread> feeders;
    for (std::size_t s = 0; s < sessions; ++s) {
      feeders.emplace_back([&, s] {
        std::size_t sent = 0;
        for (std::size_t at = 0; at + window <= samples.size();
             at += window) {
          Request req;
          req.id = at;
          req.session = "s" + std::to_string(s);
          req.series.assign(samples.begin() + static_cast<std::ptrdiff_t>(at),
                            samples.begin() +
                                static_cast<std::ptrdiff_t>(at + window));
          const Status admitted =
              server.submit(std::move(req), [&](Response resp) {
                if (resp.status != Status::kOk) ++errors;
                std::lock_guard<std::mutex> lock(mutex);
                if (++done == chunks_total) cv.notify_all();
              });
          if (admitted == Status::kOk) ++sent;
        }
        std::lock_guard<std::mutex> lock(mutex);
        chunks_total += sent;
      });
    }
    for (auto& f : feeders) f.join();
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return done == chunks_total; });
    }
    const double wall = seconds_between(t0, Clock::now());
    std::uint64_t windows = 0;
    for (std::size_t s = 0; s < sessions; ++s) {
      pnc::serve::SessionInfo info;
      server.close_session("s" + std::to_string(s), &info);
      windows += info.windows;
    }
    result.session_windows = windows;
    result.session_windows_per_sec =
        wall > 0.0 ? static_cast<double>(windows) / wall : 0.0;
  }

  // Stateless: the same per-session window count submitted as independent
  // requests (the offline shape of the same workload).
  {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t done = 0;
    std::size_t n = 0;
    const auto t0 = Clock::now();
    for (std::size_t s = 0; s < sessions; ++s) {
      for (std::size_t at = 0; at + window <= samples.size(); at += window) {
        ++n;
        Request req;
        req.id = at;
        req.series.assign(samples.begin() + static_cast<std::ptrdiff_t>(at),
                          samples.begin() +
                              static_cast<std::ptrdiff_t>(at + window));
        server.submit(std::move(req), [&](Response resp) {
          if (resp.status != Status::kOk) ++errors;
          std::lock_guard<std::mutex> lock(mutex);
          if (++done == n) cv.notify_all();
        });
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return done == n; });
    }
    const double wall = seconds_between(t0, Clock::now());
    result.stateless_windows_per_sec =
        wall > 0.0 ? static_cast<double>(n) / wall : 0.0;
  }

  server.stop();
  result.errors = errors.load();
  return result;
}

// ---------------------------------------------------------------------------
// Phase 5: drive an external pnc_serve's session protocol over pipes.

struct PipeResult {
  std::uint64_t chunks_ok = 0;
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t mismatches = 0;   // logits / events differing from in-process
  std::uint64_t errors = 0;
  bool unknown_op_listed = false; // error for a bogus op names valid ops
  bool sessions_closed = false;
  int exit_code = -1;
};

/// Expected per-window results computed in-process over the identical
/// checkpoint, plan stamp, chunking and session config.
struct Expected {
  std::vector<pnc::stream::WindowResult> windows;
  std::vector<pnc::stream::Event> events;
};

Expected run_in_process(const pnc::infer::Engine& engine,
                        const pnc::infer::Plan& plan,
                        const std::vector<double>& samples,
                        const pnc::stream::StreamConfig& config,
                        std::size_t chunk) {
  pnc::stream::StreamSession session(engine, plan, config);
  for (std::size_t at = 0; at < samples.size(); at += chunk) {
    const std::size_t n = std::min(chunk, samples.size() - at);
    session.feed(samples.data() + at, n);
  }
  return {session.take_windows(), session.take_events()};
}

std::string chunk_line(const std::string& session, std::size_t id,
                       const std::vector<double>& samples, std::size_t at,
                       std::size_t n) {
  std::ostringstream line;
  line.precision(17);
  line << "{\"op\":\"chunk\",\"session\":\"" << session << "\",\"id\":" << id
       << ",\"series\":[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) line << ',';
    line << samples[at + i];
  }
  line << "]}";
  return line.str();
}

PipeResult run_pipe(const std::string& command,
                    const pnc::infer::Engine& engine,
                    const pnc::infer::Plan& plan,
                    const std::vector<double>& samples) {
  const std::size_t kWindow = 64;
  const std::size_t kChunk = 96;  // not a multiple of the window: chunks
                                  // span window boundaries

  pnc::stream::StreamConfig reset_config;
  reset_config.window = kWindow;
  reset_config.stride = kWindow;
  reset_config.policy = pnc::stream::StatePolicy::kReset;
  pnc::stream::StreamConfig carry_config;
  carry_config.window = kWindow;
  carry_config.stride = 16;
  carry_config.policy = pnc::stream::StatePolicy::kCarry;
  carry_config.confirm_windows = 1;
  const Expected expect_reset =
      run_in_process(engine, plan, samples, reset_config, kChunk);
  const Expected expect_carry =
      run_in_process(engine, plan, samples, carry_config, kChunk);

  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw std::runtime_error("pipe: " + std::string(std::strerror(errno)));
  }
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  std::thread writer([&] {
    auto write_all = [&](const std::string& line) {
      std::string framed = line + "\n";
      const char* data = framed.data();
      std::size_t left = framed.size();
      while (left > 0) {
        const ssize_t w = write(to_child[1], data, left);
        if (w <= 0) return false;
        data += w;
        left -= static_cast<std::size_t>(w);
      }
      return true;
    };
    write_all("{\"op\":\"bogus\"}");  // satellite: the error must list ops
    write_all(
        "{\"op\":\"session\",\"name\":\"r\",\"window\":64,\"stride\":64,"
        "\"carry\":false}");
    write_all(
        "{\"op\":\"session\",\"name\":\"c\",\"window\":64,\"stride\":16,"
        "\"carry\":true,\"confirm\":1}");
    std::size_t id = 0;
    for (std::size_t at = 0; at < samples.size(); at += kChunk) {
      const std::size_t n = std::min(kChunk, samples.size() - at);
      write_all(chunk_line("r", 1000 + id, samples, at, n));
      write_all(chunk_line("c", 2000 + id, samples, at, n));
      ++id;
    }
    write_all("{\"op\":\"session\",\"name\":\"r\",\"close\":true}");
    write_all("{\"op\":\"session\",\"name\":\"c\",\"close\":true}");
    close(to_child[1]);  // EOF: the server drains and exits
  });

  PipeResult result;
  std::vector<pnc::stream::WindowResult> got_reset;
  std::vector<pnc::stream::WindowResult> got_carry;
  std::vector<pnc::stream::Event> got_reset_events;
  std::vector<pnc::stream::Event> got_carry_events;
  std::size_t sessions_closed = 0;
  bool saw_unknown_op = false;

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t r = read(from_child[0], chunk, sizeof(chunk));
    if (r <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(r));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      try {
        const auto doc = pnc::serve::JsonValue::parse(line);
        const std::string status = doc.string_or("status", "");
        if (doc.find("error") != nullptr) {
          const std::string message = doc.string_or("error", "");
          if (message.find("bogus") != std::string::npos &&
              message.find("valid:") != std::string::npos) {
            saw_unknown_op = true;
          } else {
            ++result.errors;
            std::cerr << "pipe error: " << message << "\n";
          }
          continue;
        }
        if (doc.string_or("op", "") == "session") {
          if (status == "ok" && doc.find("closed") != nullptr) {
            ++sessions_closed;
          }
          continue;
        }
        if (status != "ok") {
          ++result.errors;
          continue;
        }
        const std::uint64_t id =
            static_cast<std::uint64_t>(doc.number_or("id", 0.0));
        auto& windows = id >= 2000 ? got_carry : got_reset;
        auto& events = id >= 2000 ? got_carry_events : got_reset_events;
        ++result.chunks_ok;
        if (const auto* ws = doc.find("windows")) {
          for (const auto& w : ws->as_array()) {
            pnc::stream::WindowResult parsed;
            parsed.begin = static_cast<std::size_t>(w.number_or("begin", 0.0));
            parsed.end = static_cast<std::size_t>(w.number_or("end", 0.0));
            parsed.predicted =
                static_cast<std::size_t>(w.number_or("predicted", 0.0));
            if (const auto* ls = w.find("logits")) {
              for (const auto& v : ls->as_array()) {
                parsed.logits.push_back(v.as_number());
              }
            }
            windows.push_back(std::move(parsed));
          }
        }
        if (const auto* es = doc.find("events")) {
          for (const auto& e : es->as_array()) {
            events.push_back(
                {static_cast<std::size_t>(e.number_or("at", 0.0)),
                 static_cast<std::size_t>(e.number_or("class", 0.0))});
          }
        }
      } catch (const std::exception&) {
        ++result.errors;
      }
    }
    buffer.erase(0, start);
  }
  writer.join();
  close(from_child[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  result.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  result.unknown_op_listed = saw_unknown_op;
  result.sessions_closed = sessions_closed == 2;

  // Bitwise comparison against the in-process sessions. fmt_double's
  // %.17g round-trips doubles exactly, so == is the right comparison.
  auto compare = [&result](const Expected& want,
                           const std::vector<pnc::stream::WindowResult>& got,
                           const std::vector<pnc::stream::Event>& got_events,
                           const char* tag) {
    if (got.size() != want.windows.size()) {
      std::cerr << "pipe " << tag << ": " << got.size() << " windows, want "
                << want.windows.size() << "\n";
      ++result.mismatches;
      return;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      const auto& g = got[i];
      const auto& w = want.windows[i];
      bool same = g.begin == w.begin && g.end == w.end &&
                  g.predicted == w.predicted &&
                  g.logits.size() == w.logits.size();
      for (std::size_t j = 0; same && j < g.logits.size(); ++j) {
        same = g.logits[j] == w.logits[j];
      }
      if (!same) {
        std::cerr << "pipe " << tag << ": window " << i << " differs\n";
        ++result.mismatches;
      }
    }
    if (got_events.size() != want.events.size()) {
      std::cerr << "pipe " << tag << ": " << got_events.size()
                << " events, want " << want.events.size() << "\n";
      ++result.mismatches;
      return;
    }
    for (std::size_t i = 0; i < got_events.size(); ++i) {
      if (got_events[i].at != want.events[i].at ||
          got_events[i].klass != want.events[i].klass) {
        std::cerr << "pipe " << tag << ": event " << i << " differs\n";
        ++result.mismatches;
      }
    }
  };
  compare(expect_reset, got_reset, got_reset_events, "reset");
  compare(expect_carry, got_carry, got_carry_events, "carry");
  result.windows = got_reset.size() + got_carry.size();
  result.events = got_reset_events.size() + got_carry_events.size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnc;

  std::string pipe_cmd;
  std::string pipe_checkpoint;
  std::size_t pipe_classes = 2;
  double pipe_dt = 0.1;
  std::size_t pipe_hidden_cap = 9;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_stream: missing value for " << flag << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (flag == "--pipe-cmd") pipe_cmd = value();
    else if (flag == "--pipe-checkpoint") pipe_checkpoint = value();
    else if (flag == "--pipe-classes") pipe_classes = std::stoul(value());
    else if (flag == "--pipe-dt") pipe_dt = std::stod(value());
    else if (flag == "--pipe-hidden-cap") pipe_hidden_cap = std::stoul(value());
    else {
      std::cerr << "bench_stream: unknown flag " << flag << "\n";
      return 1;
    }
  }

  const bool quick = bench::quick_mode();
  bench::JsonReport report("stream");

  // Pipe mode stands alone: replay the session protocol against an
  // external pnc_serve over the given checkpoint, write the report, done.
  if (!pipe_cmd.empty()) {
    if (pipe_checkpoint.empty()) {
      std::cerr << "bench_stream: --pipe-cmd needs --pipe-checkpoint\n";
      return 1;
    }
    const infer::Engine engine = infer::load_engine(
        pipe_checkpoint, "adapt", pipe_classes, pipe_dt, pipe_hidden_cap);
    const infer::Plan plan = stamped_plan(engine, 0);

    stream::SignalConfig signal_config;
    signal_config.segments = 6;
    signal_config.draws_per_segment = 2;
    signal_config.seed = 5;
    const stream::ContinuousSignal signal =
        stream::make_continuous_signal(signal_config);

    PipeResult pipe;
    report.timed_phase("pipe", [&] {
      pipe = run_pipe(pipe_cmd, engine, plan, signal.samples);
    });
    report.metric("pipe_chunks_ok", static_cast<double>(pipe.chunks_ok));
    report.metric("pipe_windows", static_cast<double>(pipe.windows));
    report.metric("pipe_events", static_cast<double>(pipe.events));
    report.metric("pipe_mismatches", static_cast<double>(pipe.mismatches));
    report.metric("pipe_errors", static_cast<double>(pipe.errors));
    report.metric("pipe_unknown_op_listed",
                  pipe.unknown_op_listed ? 1.0 : 0.0);
    report.metric("pipe_sessions_closed", pipe.sessions_closed ? 1.0 : 0.0);
    report.metric("pipe_exit_code", static_cast<double>(pipe.exit_code));
    report.write();
    std::cout << "pipe: " << pipe.chunks_ok << " chunks ok, " << pipe.windows
              << " windows, " << pipe.events << " events, "
              << pipe.mismatches << " mismatches, " << pipe.errors
              << " errors, exit=" << pipe.exit_code << "\n";
    const bool pass = pipe.exit_code == 0 && pipe.errors == 0 &&
                      pipe.mismatches == 0 && pipe.windows > 0 &&
                      pipe.unknown_op_listed && pipe.sessions_closed;
    return pass ? 0 : 1;
  }

  // Phase 1: train the classifier the streaming phases serve.
  const std::string dataset = "PowerCons";
  train::ExperimentSpec spec = train::adapt_spec(dataset);
  bench::apply_scale(spec);
  const data::Dataset ds =
      data::make_dataset(dataset, spec.data_seed, spec.sequence_length);
  const auto classes = static_cast<std::size_t>(ds.num_classes);
  auto model =
      core::make_adapt_pnc(classes, ds.sample_period, 7, spec.hidden_cap);
  report.timed_phase("train", [&] {
    std::cerr << "[stream] training ADAPT-pNC on " << dataset << "...\n";
    (void)train::train(*model, ds, spec.train);
  });

  auto engine =
      std::make_shared<const infer::Engine>(infer::Engine::compile(*model));
  const infer::Plan plan = stamped_plan(*engine, 7);

  const std::size_t window = spec.sequence_length;
  stream::SignalConfig signal_config;
  signal_config.dataset = dataset;
  signal_config.segments = quick ? 6 : 16;
  signal_config.draws_per_segment = quick ? 3 : 4;
  signal_config.series_length = window;
  signal_config.seed = 11;
  const stream::ContinuousSignal signal =
      stream::make_continuous_signal(signal_config);

  // Phase 2: the parity gate. Reset-mode stride=window logits must equal
  // Engine::forward on each aligned window, bitwise.
  {
    double max_diff = 0.0;
    report.timed_phase("parity", [&] {
      stream::StreamConfig config;
      config.window = window;
      config.stride = window;
      config.policy = stream::StatePolicy::kReset;
      stream::StreamSession session(*engine, plan, config);
      session.feed(signal.samples);
      const auto windows = session.take_windows();
      infer::Plan offline = stamped_plan(*engine, 7);
      ad::Tensor x = ad::Tensor::uninitialized(1, window);
      ad::Tensor logits;
      for (const auto& w : windows) {
        for (std::size_t t = 0; t < window; ++t) {
          x(0, t) = signal.samples[w.begin + t];
        }
        engine->forward(offline, x, logits);
        for (std::size_t j = 0; j < w.logits.size(); ++j) {
          max_diff = std::max(max_diff,
                              std::abs(w.logits[j] - logits(0, j)));
        }
      }
    });
    report.metric("parity_max_abs_diff", max_diff);
    std::cout << "parity: max |stream - forward| = " << max_diff << "\n";
    if (max_diff != 0.0) {
      std::cerr << "bench_stream: stride=window parity violated\n";
      report.write();
      return 1;
    }
  }

  // Phase 3: detection latency and accuracy vs stride, clean and under
  // boundary-spanning sensor faults.
  {
    stream::StreamNoiseSpec noise;
    noise.wander_amplitude = 0.15;
    noise.wander_period_samples = 384.0;
    noise.dropouts_per_kilosample = 1.0;
    noise.dropout_length = 24;
    noise.impulse_rate = 0.002;
    noise.impulse_magnitude = 1.5;
    const stream::NoiseTimeline timeline(noise, 23, signal.samples.size());
    const std::vector<double> corrupted = timeline.corrupted(signal.samples);

    std::ostringstream strides;
    strides << "[";
    bool first = true;
    report.timed_phase("stride_sweep", [&] {
      for (const std::size_t stride :
           {window, window / 2, window / 4, window / 8}) {
        if (stride == 0) continue;
        const StrideResult clean = run_stride(*engine, plan, signal,
                                              signal.samples, window, stride);
        const StrideResult noisy =
            run_stride(*engine, plan, signal, corrupted, window, stride);
        if (!first) strides << ",";
        first = false;
        strides << stride_result_json(clean, "clean") << ","
                << stride_result_json(noisy, "noisy");
        std::cout << "stride " << stride << ": clean acc=" << clean.accuracy
                  << " latency=" << clean.mean_latency
                  << ", noisy acc=" << noisy.accuracy
                  << " latency=" << noisy.mean_latency << "\n";
        if (stride == window) {
          report.metric("latency_stride_window", clean.mean_latency);
          report.metric("accuracy_stride_window", clean.accuracy);
          report.metric("noisy_accuracy_stride_window", noisy.accuracy);
        }
        if (stride == window / 8) {
          report.metric("latency_stride_w8", clean.mean_latency);
          report.metric("accuracy_stride_w8", clean.accuracy);
          report.metric("noisy_accuracy_stride_w8", noisy.accuracy);
        }
      }
    });
    strides << "]";
    report.section("strides", strides.str());
  }

  // Phase 4: long-lived sessions through the server vs stateless windows.
  {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t shards = hw >= 4 ? 2 : 1;
    const std::size_t sessions = quick ? 2 : 4;
    ServeResult serve;
    report.timed_phase("serve", [&] {
      serve = run_serve(engine, signal.samples, window, sessions, shards);
    });
    report.metric("serve_sessions", static_cast<double>(sessions));
    report.metric("serve_session_windows",
                  static_cast<double>(serve.session_windows));
    report.metric("serve_session_windows_per_sec",
                  serve.session_windows_per_sec);
    report.metric("serve_stateless_windows_per_sec",
                  serve.stateless_windows_per_sec);
    report.metric("serve_errors", static_cast<double>(serve.errors));
    std::cout << "serve: sessions=" << serve.session_windows_per_sec
              << " win/s, stateless=" << serve.stateless_windows_per_sec
              << " win/s, errors=" << serve.errors << "\n";
    if (serve.errors != 0) {
      report.write();
      return 1;
    }
  }

  report.write();
  std::cout << "wrote BENCH_stream.json\n";
  return 0;
}
