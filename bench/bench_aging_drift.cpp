// Extension experiment: accuracy over device lifetime under component
// aging drift (the "temporal fluctuations" the paper's introduction lists
// among printed-electronics challenges).
//
// Both models are trained once; accuracy is then evaluated with the
// DriftModel at increasing device ages, which composes the as-printed
// ±10 % variation with a growing deterministic trend and stochastic
// spread. Shape expectation: the VA-trained ADAPT-pNC stays usable
// noticeably longer than the no-variation-aware baseline.

#include <iostream>

#include "bench_common.hpp"
#include "pnc/util/table.hpp"
#include "pnc/variation/drift.hpp"

int main() {
  using namespace pnc;

  const std::string dataset = "SmoothS";
  const std::vector<double> ages = {0.0, 0.5, 1.0, 2.0, 4.0};

  train::ExperimentSpec spec = train::adapt_spec(dataset);
  bench::apply_scale(spec);
  const data::Dataset ds =
      data::make_dataset(dataset, spec.data_seed, spec.sequence_length);
  const auto classes = static_cast<std::size_t>(ds.num_classes);

  bench::JsonReport report("aging_drift");

  auto baseline = core::make_baseline_ptpnc(classes, ds.sample_period, 3);
  auto adapt =
      core::make_adapt_pnc(classes, ds.sample_period, 3, spec.hidden_cap);
  report.timed_phase("train", [&] {
    std::cerr << "[aging] training baseline...\n";
    train::TrainConfig plain = spec.train;
    plain.train_variation = variation::VariationSpec::none();
    plain.augmentation.reset();
    (void)train::train(*baseline, ds, plain);

    std::cerr << "[aging] training ADAPT-pNC...\n";
    (void)train::train(*adapt, ds, spec.train);
  });

  auto printing = std::make_shared<variation::UniformVariation>(0.10);
  variation::DriftModel::Config drift;
  drift.trend_per_ref = 0.08;
  drift.spread_per_ref = 0.06;

  util::Rng rng(21);
  const int repeats = bench::quick_mode() ? 2 : 6;

  util::Table table({"Device age (t/t_ref)", "pTPNC acc", "ADAPT-pNC acc"});
  report.timed_phase("evaluate", [&] {
    for (const double age : ages) {
      const variation::VariationSpec eval =
          variation::drift_spec(printing, drift, age);
      const double acc_base =
          train::evaluate_accuracy(*baseline, ds.test, eval, rng, repeats);
      const double acc_adapt =
          train::evaluate_accuracy(*adapt, ds.test, eval, rng, repeats);
      table.add_row({util::format_fixed(age, 1),
                     util::format_fixed(acc_base, 3),
                     util::format_fixed(acc_adapt, 3)});
      const std::string tag = util::format_fixed(age, 1);
      report.metric("ptpnc_acc_age_" + tag, acc_base);
      report.metric("adapt_acc_age_" + tag, acc_adapt);
    }
  });

  std::cout << "\nAccuracy over device lifetime on " << dataset
            << " (as-printed ±10% variation composed with aging drift: "
               "+8% trend and 6% spread per reference lifetime)\n\n";
  table.print(std::cout);
  table.write_csv("aging_drift.csv");
  report.write();
  return 0;
}
