// Chaos-injection harness for the pnc::serve runtime (DESIGN.md §13).
// Three phases:
//
//  1. priority — open-loop overload of a tiny admission queue with mixed
//     priority classes; at saturation the server must shed best-effort
//     work before interactive work (displacement, per-class counters).
//  2. directed — (chaos builds only) arm each fail-point kind with
//     probability 1 and verify the injected failure surfaces as a clean
//     per-request response: a worker stall triggers a watchdog restart,
//     compile/forward/overlay throws become kError — never a crash.
//  3. storm    — a randomized, time-sliced fault schedule (worker stalls,
//     forced throws, slow compiles) over an open-loop request storm with
//     hot reloads, overlay churn and deadline traffic. Invariants:
//     every submitted request is answered exactly once, the storm drains
//     without deadlock, and every kOk response is bit-identical to a
//     direct single-request Engine call.
//
// Writes BENCH_serve_chaos.json (per-class outcomes, fail-point fire
// counts, watchdog restarts) and exits non-zero on any invariant breach.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pnc/calib/calibrator.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/serve/server.hpp"
#include "pnc/util/failpoint.hpp"
#include "pnc/util/rng.hpp"

namespace {

using pnc::serve::Priority;
using pnc::serve::Request;
using pnc::serve::Response;
using pnc::serve::Server;
using pnc::serve::ServerConfig;
using pnc::serve::Status;
using pnc::util::FailPoints;
using Clock = std::chrono::steady_clock;

#if defined(PNC_CHAOS)
constexpr bool kChaosCompiled = true;
#else
constexpr bool kChaosCompiled = false;
#endif

constexpr std::size_t kClassOf[3] = {0, 1, 2};  // i % 3 -> priority class

std::shared_ptr<const pnc::infer::Engine> make_engine() {
  auto model = pnc::core::make_adapt_pnc(3, 0.01, 7, 6);
  return std::make_shared<const pnc::infer::Engine>(
      pnc::infer::Engine::compile(*model));
}

std::vector<std::vector<double>> make_series(std::size_t count,
                                             std::size_t steps) {
  pnc::util::Rng rng(4242);
  std::vector<std::vector<double>> out(count);
  for (auto& s : out) {
    s.resize(steps);
    for (auto& v : s) v = rng.uniform(-1.0, 1.0);
  }
  return out;
}

/// Direct-engine reference: the exact realization the server stamps
/// (Rng(seed) at batch 1), one series per forward.
std::vector<std::vector<double>> reference_logits(
    const pnc::infer::Engine& engine, const pnc::variation::VariationSpec& spec,
    std::uint64_t seed, const std::vector<std::vector<double>>& series) {
  pnc::infer::Plan plan = engine.make_plan();
  pnc::util::Rng rng(seed);
  engine.stamp(plan, spec, rng, 1);
  std::vector<std::vector<double>> refs;
  for (const auto& s : series) {
    engine.broadcast_batch(plan, 1);
    pnc::ad::Tensor x(1, s.size());
    std::copy(s.begin(), s.end(), x.data().begin());
    pnc::ad::Tensor logits;
    engine.forward(plan, x, logits);
    refs.emplace_back(logits.data().begin(), logits.data().end());
  }
  return refs;
}

// ---------------------------------------------------------------------------
// Phase 1: priority scheduling at saturation.

struct PriorityResult {
  std::array<std::uint64_t, 3> submitted{};
  pnc::serve::ServerStats stats;
  bool ok = false;
};

PriorityResult run_priority(std::shared_ptr<const pnc::infer::Engine> engine,
                            const std::vector<std::vector<double>>& series,
                            std::size_t n) {
  ServerConfig config;
  config.shards = 1;
  config.max_batch = 8;
  config.batch_deadline_us = 0.0;
  config.queue_capacity = 48;
  Server server(config);
  server.load_model("default", {engine});
  server.start();

  PriorityResult result;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Request req;
    req.id = i;
    req.series = series[i % series.size()];
    req.priority = static_cast<Priority>(kClassOf[i % 3]);
    ++result.submitted[i % 3];
    server.submit(std::move(req), [&](Response) {
      std::lock_guard<std::mutex> lock(mutex);
      if (++done == n) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return done == n; });
  }
  server.stop();
  result.stats = server.stats();

  const auto rate = [&](Priority p) {
    const std::size_t k = static_cast<std::size_t>(p);
    return result.submitted[k] == 0
               ? 0.0
               : static_cast<double>(result.stats.shed_by_class[k]) /
                     static_cast<double>(result.submitted[k]);
  };
  // Saturation must shed, and must shed best-effort strictly before
  // interactive (displacement makes interactive sheds near-impossible).
  result.ok = result.stats.shed > 0 &&
              rate(Priority::kBestEffort) > rate(Priority::kInteractive);
  return result;
}

// ---------------------------------------------------------------------------
// Phase 2: directed injection — each fail-point kind, deterministically.

struct DirectedResult {
  bool ok = true;
  std::uint64_t restarts = 0;
  std::map<std::string, std::uint64_t> fired;

  void expect(bool cond, const std::string& what) {
    if (!cond) {
      ok = false;
      std::cerr << "directed: FAILED: " << what << "\n";
    }
  }
  void take(const std::string& name) {
    fired[name] += FailPoints::fired(name);
    FailPoints::disarm(name);
  }
};

DirectedResult run_directed(std::shared_ptr<const pnc::infer::Engine> engine,
                            const pnc::variation::VariationSpec& spec,
                            std::uint64_t seed, const pnc::calib::Overlay& overlay,
                            const std::vector<double>& series) {
  DirectedResult result;
  ServerConfig config;
  config.shards = 1;
  config.max_batch = 4;
  config.watchdog_budget_ms = 30.0;
  Server server(config);
  auto load = [&] {
    pnc::serve::ModelConfig model;
    model.engine = engine;
    model.variation = spec;
    model.variation_seed = seed;
    server.load_model("default", std::move(model));
  };
  load();
  server.register_overlay("dev0", overlay);
  server.start();
  auto request = [&](const std::string& overlay_name = "") {
    Request req;
    req.series = series;
    req.overlay = overlay_name;
    return server.infer(std::move(req));
  };

  // A hung worker: the stalled batch still answers, the watchdog hands
  // the shard to a fresh thread meanwhile.
  FailPoints::arm("serve.worker_stall", {.sleep_ms = 150});
  result.expect(request().status == Status::kOk, "stalled batch answers kOk");
  result.take("serve.worker_stall");
  result.restarts = server.stats().worker_restarts;
  result.expect(result.restarts >= 1, "watchdog restarted the hung shard");

  // A failed plan compile: per-request kError, nothing cached, the next
  // (un-injected) compile succeeds.
  load();  // new generation: forces a plan-cache miss
  FailPoints::arm("serve.plan_compile", {.do_throw = true});
  result.expect(request().status == Status::kError, "compile throw -> kError");
  result.take("serve.plan_compile");
  result.expect(request().status == Status::kOk, "compile retries clean");

  // A forward that throws mid-batch: per-request kError, shard survives.
  FailPoints::arm("serve.batch_forward", {.do_throw = true});
  result.expect(request().status == Status::kError, "forward throw -> kError");
  result.take("serve.batch_forward");

  // Overlay resolution failure: rejected inline at submit.
  FailPoints::arm("serve.overlay_resolve", {.do_throw = true});
  result.expect(request("dev0").status == Status::kError,
                "overlay resolve throw -> kError");
  result.take("serve.overlay_resolve");
  result.expect(request("dev0").status == Status::kOk, "overlay serves clean");

  server.stop();
  result.expect(server.stats().errors >= 3, "errors were counted");
  return result;
}

// ---------------------------------------------------------------------------
// Phase 3: randomized fault storm.

struct StormResult {
  std::size_t requests = 0;
  std::size_t answered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t parity_violations = 0;
  std::array<std::uint64_t, 4> by_status{};  // ok, shed, deadline, error
  bool deadlock = false;
  std::map<std::string, std::uint64_t> fired;
  pnc::serve::ServerStats stats;
};

StormResult run_storm(std::shared_ptr<const pnc::infer::Engine> engine,
                      const pnc::variation::VariationSpec& spec,
                      std::uint64_t seed, const pnc::calib::Overlay& overlay,
                      const std::vector<std::vector<double>>& series,
                      const std::vector<std::vector<double>>& refs_base,
                      const std::vector<std::vector<double>>& refs_cal,
                      std::size_t n, int slice_ms) {
  ServerConfig config;
  config.shards = 2;
  config.max_batch = 8;
  config.batch_deadline_us = 100.0;
  config.queue_capacity = 256;
  config.plan_cache_capacity = 4;
  config.overlay_capacity = 4;
  config.watchdog_budget_ms = 50.0;
  Server server(config);
  auto load = [&] {
    pnc::serve::ModelConfig model;
    model.engine = engine;
    model.variation = spec;
    model.variation_seed = seed;
    server.load_model("default", std::move(model));
  };
  load();
  server.register_overlay("dev0", overlay);
  server.start();

  StormResult result;
  result.requests = n;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint8_t> counts(n, 0);

  // The randomized schedule: each slice arms a mix of fault kinds, the
  // per-point xorshift streams make the run reproducible. A quiet slice
  // lets kOk traffic through so the parity invariant has teeth.
  const std::vector<std::string> slices = {
      "serve.worker_stall=sleep:120",
      "serve.batch_forward=throw:0.3;serve.overlay_resolve=throw:0.5",
      "serve.plan_compile=throw:1.0;serve.worker_stall=sleep:20:0.2",
      "serve.batch_forward=throw:0.1;serve.plan_compile=sleep:10:0.5",
      "",
  };
  std::atomic<bool> storm_done{false};
  std::thread chaos([&] {
    std::size_t slice = 0;
    while (!storm_done.load(std::memory_order_acquire)) {
      const std::string& spec_str = slices[slice % slices.size()];
      if (kChaosCompiled && !spec_str.empty()) {
        FailPoints::arm_from_spec(spec_str);
      }
      for (int waited = 0;
           waited < slice_ms && !storm_done.load(std::memory_order_acquire);
           waited += 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      for (const std::string& name : FailPoints::armed_names()) {
        result.fired[name] += FailPoints::fired(name);
      }
      FailPoints::disarm_all();
      ++slice;
    }
  });

  const double target_rps = 4000.0;
  const auto start = Clock::now() + std::chrono::milliseconds(5);
  for (std::size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(static_cast<double>(i) /
                                                  target_rps)));
    if (i > 0 && i % (n / 16) == 0) load();  // hot reload mid-storm
    if (i > 0 && i % (n / 10) == 0) {        // overlay churn past the LRU bound
      server.register_overlay("churn" + std::to_string((i / (n / 10)) % 8),
                              overlay);
      server.register_overlay("dev0", overlay);
    }
    Request req;
    req.id = i;
    req.series = series[i % series.size()];
    req.priority = static_cast<Priority>(kClassOf[i % 3]);
    if (req.priority == Priority::kBestEffort) req.deadline_us = 3000.0;
    if (i % 3 == 0) req.overlay = "dev0";
    server.submit(std::move(req), [&](Response resp) {
      std::lock_guard<std::mutex> lock(mutex);
      const std::size_t id = static_cast<std::size_t>(resp.id);
      if (counts[id] == 0) {
        ++result.answered;
      } else {
        ++result.duplicates;
      }
      if (counts[id] < 255) ++counts[id];
      ++result.by_status[static_cast<std::size_t>(resp.status)];
      if (resp.status == Status::kOk) {
        const auto& want =
            id % 3 == 0 ? refs_cal[id % series.size()]
                        : refs_base[id % series.size()];
        if (resp.logits != want) ++result.parity_violations;
      }
      if (result.answered == counts.size()) cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lock(mutex);
    result.deadlock = !cv.wait_for(lock, std::chrono::seconds(90), [&] {
      return result.answered == counts.size();
    });
  }
  storm_done.store(true, std::memory_order_release);
  chaos.join();
  FailPoints::disarm_all();
  if (!result.deadlock) {
    server.stop();
    result.stats = server.stats();
  }
  return result;
}

std::string fired_json(const std::map<std::string, std::uint64_t>& fired) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, count] : fired) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << count;
  }
  out << "}";
  return out.str();
}

}  // namespace

int main() {
  using namespace pnc;

  const bool quick = bench::quick_mode();
  bench::JsonReport report("serve_chaos");
  report.metric("chaos_compiled", kChaosCompiled ? 1.0 : 0.0);

  const auto engine = make_engine();
  const auto spec = variation::VariationSpec::printing(0.08);
  const std::uint64_t seed = 424;
  const auto series = make_series(64, 32);

  // A non-trivial calibration overlay for this exact realization.
  calib::Device device(*engine, spec, seed);
  std::vector<double> deltas(device.directions());
  for (std::size_t k = 0; k < deltas.size(); ++k) {
    deltas[k] = (k % 2 == 0) ? 0.3 : -0.2;
  }
  device.set_deltas(deltas);
  const calib::Overlay overlay = device.make_overlay();

  std::vector<std::vector<double>> refs_base;
  std::vector<std::vector<double>> refs_cal;
  report.timed_phase("references", [&] {
    refs_base = reference_logits(*engine, spec, seed, series);
    infer::Engine patched(*engine);
    calib::apply_overlay(patched, overlay);
    refs_cal = reference_logits(patched, spec, seed, series);
  });

  // Phase 1: priority scheduling at saturation.
  PriorityResult priority;
  report.timed_phase("priority", [&] {
    priority = run_priority(engine, series, quick ? 1500 : 4500);
  });
  for (const Priority p :
       {Priority::kInteractive, Priority::kBatch, Priority::kBestEffort}) {
    const std::size_t k = static_cast<std::size_t>(p);
    const std::string tag = serve::priority_name(p);
    report.metric("priority_submitted_" + tag,
                  static_cast<double>(priority.submitted[k]));
    report.metric("priority_served_" + tag,
                  static_cast<double>(priority.stats.served_by_class[k]));
    report.metric("priority_shed_" + tag,
                  static_cast<double>(priority.stats.shed_by_class[k]));
  }
  report.metric("priority_total_shed", static_cast<double>(priority.stats.shed));
  report.metric("priority_ok", priority.ok ? 1.0 : 0.0);
  std::cout << "priority: shed interactive="
            << priority.stats.shed_by_class[0]
            << " batch=" << priority.stats.shed_by_class[1]
            << " best_effort=" << priority.stats.shed_by_class[2]
            << (priority.ok ? " (ok)" : " (VIOLATION)") << "\n";

  // Phase 2: directed injection, one fail-point kind at a time.
  DirectedResult directed;
  if (kChaosCompiled) {
    report.timed_phase("directed", [&] {
      directed =
          run_directed(engine, spec, seed, overlay, series.front());
    });
    report.metric("directed_ok", directed.ok ? 1.0 : 0.0);
    report.metric("directed_restarts", static_cast<double>(directed.restarts));
    std::cout << "directed: " << (directed.ok ? "ok" : "VIOLATION")
              << ", restarts=" << directed.restarts << "\n";
  }

  // Phase 3: randomized fault storm.
  StormResult storm;
  report.timed_phase("storm", [&] {
    storm = run_storm(engine, spec, seed, overlay, series, refs_base,
                      refs_cal, quick ? 1200 : 4000, quick ? 100 : 200);
  });
  const std::uint64_t lost =
      static_cast<std::uint64_t>(storm.requests - storm.answered);
  report.metric("storm_requests", static_cast<double>(storm.requests));
  report.metric("storm_ok", static_cast<double>(storm.by_status[0]));
  report.metric("storm_shed", static_cast<double>(storm.by_status[1]));
  report.metric("storm_deadline", static_cast<double>(storm.by_status[2]));
  report.metric("storm_error", static_cast<double>(storm.by_status[3]));
  report.metric("lost_responses", static_cast<double>(lost));
  report.metric("duplicate_responses", static_cast<double>(storm.duplicates));
  report.metric("parity_violations",
                static_cast<double>(storm.parity_violations));
  report.metric("deadlock_detected", storm.deadlock ? 1.0 : 0.0);
  report.metric("worker_restarts",
                static_cast<double>(storm.stats.worker_restarts +
                                    directed.restarts));
  report.metric("deadline_expired",
                static_cast<double>(storm.stats.deadline_expired));
  report.metric("overlay_evictions",
                static_cast<double>(storm.stats.overlay_evictions));

  std::map<std::string, std::uint64_t> fired = directed.fired;
  for (const auto& [name, count] : storm.fired) fired[name] += count;
  std::size_t distinct = 0;
  for (const auto& [name, count] : fired) distinct += count > 0;
  report.metric("distinct_failpoints_fired", static_cast<double>(distinct));
  report.section("fail_points", fired_json(fired));

  std::cout << "storm: " << storm.answered << "/" << storm.requests
            << " answered (ok=" << storm.by_status[0]
            << " shed=" << storm.by_status[1]
            << " deadline=" << storm.by_status[2]
            << " error=" << storm.by_status[3]
            << "), duplicates=" << storm.duplicates
            << ", parity_violations=" << storm.parity_violations
            << ", restarts=" << storm.stats.worker_restarts
            << ", fail-point kinds=" << distinct << "\n";

  bool ok = priority.ok && lost == 0 && storm.duplicates == 0 &&
            storm.parity_violations == 0 && !storm.deadlock &&
            storm.by_status[0] > 0;
  if (kChaosCompiled) {
    ok = ok && directed.ok && distinct >= 4 &&
         storm.stats.worker_restarts + directed.restarts >= 1;
  }
  report.metric("invariants_ok", ok ? 1.0 : 0.0);
  report.write();
  std::cout << "wrote BENCH_serve_chaos.json: "
            << (ok ? "all invariants hold" : "INVARIANT VIOLATION") << "\n";
  if (storm.deadlock) {
    // The server cannot be stopped cleanly with requests stuck in it;
    // the report is on disk, so fail hard rather than hang in a join.
    std::_Exit(2);
  }
  return ok ? 0 : 1;
}
