// Load generator for the pnc::serve runtime (ROADMAP: production-scale
// serving). Four in-process phases plus an optional external-process one:
//
//  1. direct        — apples-to-apples batch-1 vs batch-8 engine calls on
//                     the *same* request set (interleaved best-of cells,
//                     so scheduler noise hits both shapes equally). The
//                     perf-smoke CI job asserts t1_b8 >= t1_b1 from here.
//  2. ladder        — open-loop arrival schedule at a doubling target-rps
//                     ladder, at 1 and N worker shards. Latency is
//                     completion minus *scheduled* arrival (coordinated
//                     omission safe). Saturation = highest rung that is
//                     shed-free (< 1%) and achieves >= 90% of its target.
//  3. overload      — a tiny admission queue driven far past saturation
//                     must shed (bounded work, never unbounded queueing).
//  4. hot-reload    — checkpoint swaps mid-stream must produce zero
//                     errors while responses span both generations.
//  5. --pipe-cmd C  — spawn `C` (a pnc_serve command line), drive it with
//                     NDJSON requests over its stdin/stdout, optionally
//                     injecting a mid-run reload (--pipe-reload PATH).
//                     Used by the serve-load-smoke CI job.
//
// Writes BENCH_serve_load.json: p50/p95/p99 latency, saturation rps,
// multi-shard scaling, shed rates and the dispatch batch-size histogram.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "pnc/baseline/elman_rnn.hpp"
#include "pnc/core/model.hpp"
#include "pnc/infer/engine.hpp"
#include "pnc/serve/json.hpp"
#include "pnc/serve/server.hpp"
#include "pnc/util/rng.hpp"

namespace {

using pnc::serve::Request;
using pnc::serve::Response;
using pnc::serve::Server;
using pnc::serve::ServerConfig;
using pnc::serve::Status;
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::unique_ptr<pnc::core::SequenceClassifier> make_model(
    const std::string& kind) {
  if (kind == "adapt") return pnc::core::make_adapt_pnc(3, 0.01, 7, 6);
  if (kind == "elman") return pnc::baseline::make_elman(3, 7, 6);
  throw std::invalid_argument("unknown kind " + kind);
}

/// Deterministic synthetic request set: smooth series the circuits can
/// integrate without under/overflow, distinct per request.
std::vector<std::vector<double>> make_series(std::size_t count,
                                             std::size_t steps) {
  pnc::util::Rng rng(4242);
  std::vector<std::vector<double>> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].resize(steps);
    const double phase = rng.uniform(0.0, 6.28);
    const double freq = rng.uniform(0.05, 0.3);
    for (std::size_t t = 0; t < steps; ++t) {
      out[i][t] = 0.6 * std::sin(phase + freq * static_cast<double>(t)) +
                  rng.uniform(-0.1, 0.1);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Phase 1: direct engine cells — batch 1 vs batch 8 on the same requests.

struct DirectResult {
  double b1_rps = 0.0;
  double b8_rps = 0.0;
};

/// Best-of over interleaved rounds: within each round time 8 batch-1
/// forwards and one batch-8 forward back to back, so drift and frequency
/// scaling bias both cells the same way.
DirectResult run_direct(const pnc::infer::Engine& engine,
                        const std::vector<std::vector<double>>& series,
                        std::size_t rounds, std::size_t reps) {
  const std::size_t kRows = 8;
  const std::size_t steps = series.front().size();

  pnc::ad::Tensor all = pnc::ad::Tensor::uninitialized(kRows, steps);
  std::vector<pnc::ad::Tensor> rows;
  for (std::size_t r = 0; r < kRows; ++r) {
    pnc::ad::Tensor row = pnc::ad::Tensor::uninitialized(1, steps);
    for (std::size_t t = 0; t < steps; ++t) {
      row(0, t) = series[r % series.size()][t];
      all(r, t) = row(0, t);
    }
    rows.push_back(std::move(row));
  }

  pnc::infer::Plan plan = engine.make_plan();
  pnc::util::Rng rng(7);
  engine.stamp(plan, pnc::variation::VariationSpec::none(), rng, 1);
  pnc::ad::Tensor logits;

  double best_b1 = 1e300;
  double best_b8 = 1e300;
  for (std::size_t round = 0; round < rounds; ++round) {
    engine.broadcast_batch(plan, 1);
    auto t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t r = 0; r < kRows; ++r) {
        engine.forward(plan, rows[r], logits);
      }
    }
    best_b1 = std::min(best_b1, seconds_between(t0, Clock::now()));

    engine.broadcast_batch(plan, kRows);
    t0 = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      engine.forward(plan, all, logits);
    }
    best_b8 = std::min(best_b8, seconds_between(t0, Clock::now()));
  }
  const double calls = static_cast<double>(kRows * reps);
  return {calls / best_b1, calls / best_b8};
}

// ---------------------------------------------------------------------------
// Phase 2: open-loop load against the in-process server.

struct LoadResult {
  double target_rps = 0.0;
  double achieved_rps = 0.0;
  double shed_rate = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_ms;  // completed requests only
};

/// Drive `n` requests at an open-loop `target_rps` arrival schedule:
/// request i is submitted at start + i/target_rps regardless of earlier
/// completions, and its latency is measured from that *scheduled* arrival
/// — a slow server shows up as latency, not as a slower load generator.
LoadResult run_load(Server& server,
                    const std::vector<std::vector<double>>& series,
                    double target_rps, std::size_t n) {
  LoadResult result;
  result.target_rps = target_rps;
  result.latencies_ms.assign(n, -1.0);

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};

  const auto start = Clock::now() + std::chrono::milliseconds(5);
  for (std::size_t i = 0; i < n; ++i) {
    const auto arrival =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(static_cast<double>(i) /
                                                  target_rps));
    std::this_thread::sleep_until(arrival);
    Request req;
    req.id = i;
    req.series = series[i % series.size()];
    server.submit(std::move(req), [&, i, arrival](Response resp) {
      if (resp.status == Status::kOk) {
        result.latencies_ms[i] =
            seconds_between(arrival, Clock::now()) * 1e3;
        ++ok;
      } else if (resp.status == Status::kShed) {
        ++shed;
      } else {
        ++errors;
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (++done == n) done_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    done_cv.wait(lock, [&] { return done == n; });
  }
  const double wall = seconds_between(start, Clock::now());

  result.ok = ok.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.achieved_rps = wall > 0.0 ? static_cast<double>(result.ok) / wall : 0.0;
  result.shed_rate = static_cast<double>(result.shed) / static_cast<double>(n);
  std::erase_if(result.latencies_ms, [](double v) { return v < 0.0; });
  return result;
}

struct LadderResult {
  double saturation_rps = 0.0;
  LoadResult best;               // the saturation rung
  std::vector<LoadResult> rungs;
};

/// Doubling ladder: run rungs until one sheds (>= 1%) or falls under 90%
/// of its target, keeping the last rung that passed both gates.
LadderResult run_ladder(std::shared_ptr<const pnc::infer::Engine> engine,
                        const std::vector<std::vector<double>>& series,
                        std::size_t shards, std::size_t n_per_rung,
                        double base_rps, std::size_t max_rungs) {
  LadderResult ladder;
  double target = base_rps;
  for (std::size_t rung = 0; rung < max_rungs; ++rung, target *= 2.0) {
    ServerConfig config;
    config.shards = shards;
    config.max_batch = 16;
    config.batch_deadline_us = 100.0;
    config.queue_capacity = 4096;
    Server server(config);
    server.load_model("default", {engine});
    server.start();
    LoadResult r = run_load(server, series, target, n_per_rung);
    server.stop();
    const bool pass = r.shed_rate < 0.01 && r.errors == 0 &&
                      r.achieved_rps >= 0.9 * target;
    ladder.rungs.push_back(r);
    if (!pass) break;
    ladder.saturation_rps = r.achieved_rps;
    ladder.best = std::move(r);
  }
  return ladder;
}

std::string load_result_json(const LoadResult& r) {
  const std::vector<double> p =
      pnc::util::percentiles(r.latencies_ms, {50.0, 95.0, 99.0});
  std::ostringstream out;
  out.precision(17);
  out << "{\"target_rps\":" << r.target_rps
      << ",\"achieved_rps\":" << r.achieved_rps
      << ",\"shed_rate\":" << r.shed_rate << ",\"ok\":" << r.ok
      << ",\"shed\":" << r.shed << ",\"errors\":" << r.errors
      << ",\"p50_ms\":" << p[0] << ",\"p95_ms\":" << p[1]
      << ",\"p99_ms\":" << p[2] << "}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Phase 5: drive an external pnc_serve over stdin/stdout pipes.

struct PipeResult {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t reload_ok = 0;
  std::vector<double> total_ms;
  int exit_code = -1;
};

PipeResult run_pipe(const std::string& command, std::size_t n,
                    const std::string& reload_checkpoint) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw std::runtime_error("pipe: " + std::string(std::strerror(errno)));
  }
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  PipeResult result;
  const auto series = make_series(64, 32);

  std::thread writer([&] {
    auto write_all = [&](const std::string& line) {
      std::string framed = line + "\n";
      const char* data = framed.data();
      std::size_t left = framed.size();
      while (left > 0) {
        const ssize_t w = write(to_child[1], data, left);
        if (w <= 0) return false;
        data += w;
        left -= static_cast<std::size_t>(w);
      }
      return true;
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (!reload_checkpoint.empty() && i == n / 2) {
        write_all("{\"op\":\"reload\",\"checkpoint\":\"" +
                  pnc::serve::json_escape(reload_checkpoint) + "\"}");
      }
      std::ostringstream line;
      line.precision(17);
      line << "{\"op\":\"infer\",\"id\":" << i << ",\"series\":[";
      const std::vector<double>& s = series[i % series.size()];
      for (std::size_t t = 0; t < s.size(); ++t) {
        if (t > 0) line << ',';
        line << s[t];
      }
      line << "]}";
      if (!write_all(line.str())) break;
    }
    close(to_child[1]);  // EOF: the server drains and exits
  });

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t r = read(from_child[0], chunk, sizeof(chunk));
    if (r <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(r));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      try {
        const auto doc = pnc::serve::JsonValue::parse(line);
        const std::string status = doc.string_or("status", "error");
        if (doc.string_or("op", "") == "reload") {
          if (status == "ok") ++result.reload_ok;
          continue;
        }
        if (status == "ok") {
          ++result.ok;
          result.total_ms.push_back(doc.number_or("total_us", 0.0) / 1e3);
        } else if (status == "shed") {
          ++result.shed;
        } else {
          ++result.errors;
        }
      } catch (const std::exception&) {
        ++result.errors;
      }
    }
    buffer.erase(0, start);
  }
  writer.join();
  close(from_child[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  result.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnc;

  std::string pipe_cmd;
  std::string pipe_reload;
  std::size_t pipe_requests = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_serve_load: missing value for " << flag << "\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (flag == "--pipe-cmd") pipe_cmd = value();
    else if (flag == "--pipe-reload") pipe_reload = value();
    else if (flag == "--pipe-requests") pipe_requests = std::stoul(value());
    else {
      std::cerr << "bench_serve_load: unknown flag " << flag << "\n";
      return 1;
    }
  }

  const bool quick = bench::quick_mode();
  bench::JsonReport report("serve_load");

  // Pipe mode stands alone: drive the external server, write the report,
  // done — CI runs the in-process phases in a separate invocation.
  if (!pipe_cmd.empty()) {
    PipeResult pipe;
    report.timed_phase("pipe", [&] {
      pipe = run_pipe(pipe_cmd, pipe_requests, pipe_reload);
    });
    const auto p = util::percentiles(pipe.total_ms, {50.0, 95.0, 99.0});
    report.metric("pipe_requests", static_cast<double>(pipe_requests));
    report.metric("pipe_ok", static_cast<double>(pipe.ok));
    report.metric("pipe_shed", static_cast<double>(pipe.shed));
    report.metric("pipe_errors", static_cast<double>(pipe.errors));
    report.metric("pipe_reload_ok", static_cast<double>(pipe.reload_ok));
    report.metric("pipe_exit_code", static_cast<double>(pipe.exit_code));
    report.metric("pipe_p50_ms", p[0]);
    report.metric("pipe_p95_ms", p[1]);
    report.metric("pipe_p99_ms", p[2]);
    report.write();
    std::cout << "pipe: " << pipe.ok << " ok, " << pipe.shed << " shed, "
              << pipe.errors << " errors, reload_ok=" << pipe.reload_ok
              << ", exit=" << pipe.exit_code << "\n";
    return pipe.exit_code == 0 && pipe.errors == 0 ? 0 : 1;
  }

  const std::size_t steps = 32;
  const auto series = make_series(256, steps);

  // Phase 1: direct batch-1 vs batch-8 cells per model family.
  for (const std::string kind : {"elman", "adapt"}) {
    auto model = make_model(kind);
    const auto engine = infer::Engine::compile(*model);
    DirectResult direct;
    report.timed_phase("direct_" + kind, [&] {
      direct = run_direct(engine, series, quick ? 5 : 9, quick ? 10 : 40);
    });
    report.metric(kind + "_t1_b1_rps", direct.b1_rps);
    report.metric(kind + "_t1_b8_rps", direct.b8_rps);
    report.metric(kind + "_batch8_speedup", direct.b8_rps / direct.b1_rps);
    std::cout << "direct " << kind << ": b1=" << direct.b1_rps
              << " rps, b8=" << direct.b8_rps << " rps\n";
  }

  // Phases 2-4 serve the adapt model (the paper's architecture).
  auto engine = std::make_shared<const infer::Engine>(
      infer::Engine::compile(*make_model("adapt")));

  const std::size_t n_per_rung = quick ? 200 : 800;
  const double base_rps = quick ? 500.0 : 1000.0;
  const std::size_t max_rungs = quick ? 6 : 10;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t multi = hw >= 8 ? 4 : (hw >= 2 ? 2 : 1);

  std::ostringstream ladders;
  ladders << "{";
  double sat1 = 0.0;
  double satN = 0.0;
  for (const std::size_t shards : {std::size_t{1}, multi}) {
    LadderResult ladder;
    report.timed_phase("ladder_shards" + std::to_string(shards), [&] {
      ladder = run_ladder(engine, series, shards, n_per_rung, base_rps,
                          max_rungs);
    });
    if (shards == 1) sat1 = ladder.saturation_rps;
    satN = ladder.saturation_rps;

    const auto p =
        util::percentiles(ladder.best.latencies_ms, {50.0, 95.0, 99.0});
    const std::string tag = "shards" + std::to_string(shards);
    report.metric("saturation_rps_" + tag, ladder.saturation_rps);
    report.metric("p50_ms_" + tag, p[0]);
    report.metric("p95_ms_" + tag, p[1]);
    report.metric("p99_ms_" + tag, p[2]);
    if (ladders.str().size() > 1) ladders << ",";
    ladders << "\"" << tag << "\":[";
    for (std::size_t i = 0; i < ladder.rungs.size(); ++i) {
      if (i > 0) ladders << ",";
      ladders << load_result_json(ladder.rungs[i]);
    }
    ladders << "]";
    std::cout << "ladder " << tag << ": saturation=" << ladder.saturation_rps
              << " rps, p50=" << p[0] << " ms, p99=" << p[2] << " ms\n";
    if (multi == 1) break;  // single-core machine: one ladder is the story
  }
  ladders << "}";
  report.section("ladder", ladders.str());
  report.metric("multi_shard_scaling", sat1 > 0.0 ? satN / sat1 : 0.0);

  // Phase 3: overload a tiny admission queue — sheds must be nonzero.
  {
    ServerConfig config;
    config.shards = 1;
    config.max_batch = 8;
    config.batch_deadline_us = 0.0;
    config.queue_capacity = 16;
    Server server(config);
    server.load_model("default", {engine});
    server.start();
    LoadResult overload;
    report.timed_phase("overload", [&] {
      overload = run_load(server, series, 500000.0, quick ? 400 : 1500);
    });
    server.stop();
    report.metric("shed_rate_overload", overload.shed_rate);
    report.metric("overload_errors", static_cast<double>(overload.errors));
    std::cout << "overload: shed_rate=" << overload.shed_rate << "\n";
  }

  // Phase 4: hot reload mid-stream — zero errors, responses span both
  // generations.
  {
    ServerConfig config;
    config.shards = std::max<std::size_t>(multi, 1);
    config.max_batch = 8;
    config.batch_deadline_us = 100.0;
    config.queue_capacity = 4096;
    Server server(config);
    server.load_model("default", {engine});
    server.start();

    const std::size_t n = quick ? 300 : 1000;
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> min_gen{~0ULL};
    std::atomic<std::uint64_t> max_gen{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    report.timed_phase("hot_reload", [&] {
      for (std::size_t i = 0; i < n; ++i) {
        if (i == n / 2) {
          serve::ModelConfig next;
          next.engine = engine;
          next.checkpoint_digest = 1;  // same weights, new revision
          server.load_model("default", std::move(next));
        }
        Request req;
        req.id = i;
        req.series = series[i % series.size()];
        server.submit(std::move(req), [&](Response resp) {
          if (resp.status != Status::kOk) {
            ++errors;
          } else {
            std::uint64_t g = resp.generation;
            std::uint64_t seen = min_gen.load();
            while (g < seen && !min_gen.compare_exchange_weak(seen, g)) {
            }
            seen = max_gen.load();
            while (g > seen && !max_gen.compare_exchange_weak(seen, g)) {
            }
          }
          std::lock_guard<std::mutex> lock(mutex);
          if (++done == n) done_cv.notify_all();
        });
      }
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return done == n; });
    });
    const auto stats = server.stats();
    server.stop();
    report.metric("reload_errors", static_cast<double>(errors.load()));
    report.metric("reload_generation_span",
                  static_cast<double>(max_gen.load() - min_gen.load()));
    report.metric("plan_cache_misses",
                  static_cast<double>(stats.plan_cache_misses));

    std::ostringstream hist;
    hist << "[";
    for (std::size_t i = 0; i < stats.batch_histogram.size(); ++i) {
      if (i > 0) hist << ",";
      hist << stats.batch_histogram[i];
    }
    hist << "]";
    report.section("batch_histogram", hist.str());
    std::cout << "hot reload: errors=" << errors.load()
              << ", generation span=" << (max_gen.load() - min_gen.load())
              << "\n";
  }

  report.write();
  std::cout << "wrote BENCH_serve_load.json\n";
  return 0;
}
