// Smart-packaging design flow (Fig. 1 application): from a trained
// ADAPT-pNC to a manufacturable printed circuit.
//
// A disposable smart package monitors a temperature-abuse profile of a
// perishable good and must classify "cold chain intact" vs "abused". This
// example walks the full printed-electronics flow:
//   train -> inspect learned component values -> export crossbar columns
//   -> cross-check against the MNA circuit simulator -> device & power
//   budget for the printed label.

#include <iostream>

#include "pnc/circuit/netlists.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/hardware/cost_model.hpp"
#include "pnc/train/trainer.hpp"
#include "pnc/util/table.hpp"

int main() {
  using namespace pnc;

  // FRT's freezer power-draw profiles stand in for the cold-chain signal.
  const data::Dataset ds = data::make_dataset("FRT", 42);
  std::cout << "Cold-chain monitor: " << ds.train.size()
            << " training profiles, " << ds.num_classes << " classes\n";

  auto model = core::make_adapt_pnc(static_cast<std::size_t>(ds.num_classes),
                                    ds.sample_period, 1);
  train::TrainConfig config;
  config.max_epochs = 100;
  config.patience = 12;
  config.train_variation = variation::VariationSpec::printing(0.10, 3);
  const train::TrainResult tr = train::train(*model, ds, config);
  util::Rng rng(5);
  std::cout << "Trained " << tr.epochs_run << " epochs; clean test accuracy "
            << util::format_fixed(
                   train::evaluate_accuracy(
                       *model, ds.test, variation::VariationSpec::none(), rng),
                   3)
            << "\n\n";

  // ---- Printed component report ------------------------------------------
  std::cout << "Learned printable components (layer 2, output crossbar):\n";
  const auto& xbar = model->layer2().crossbar();
  for (std::size_t j = 0; j < xbar.n_out(); ++j) {
    const circuit::CrossbarColumn col = xbar.export_column(j, 1e6);
    std::cout << "  column " << j << ": " << col.resistor_count()
              << " resistors, " << col.inverter_count()
              << " inverters, realized bias "
              << util::format_fixed(col.bias(), 3) << "\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(col.conductances.size(), 3);
         ++i) {
      std::cout << "    w" << i << " -> "
                << circuit::format_resistance(1.0 / col.conductances[i])
                << (col.signs[i] < 0 ? " (through inverter)" : "") << "\n";
    }
  }

  // ---- Sign-off: exported circuit vs trained model -----------------------
  // Simulate the exported output column with the MNA solver and compare to
  // the model's own weights for a probe input.
  const std::vector<double> probe(xbar.n_in(), 0.3);
  const circuit::CrossbarColumn col = xbar.export_column(0, 1e6);
  std::vector<double> signed_probe(probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    signed_probe[i] = static_cast<double>(col.signs[i]) * probe[i];
  }
  const circuit::CrossbarNetlist net = circuit::build_crossbar_netlist(
      signed_probe, col.conductances, col.bias_conductance,
      col.pulldown_conductance, static_cast<double>(col.bias_sign));
  const auto v = circuit::MnaSolver(net.netlist).solve_dc();
  std::cout << "\nSign-off check, output column 0: circuit simulation "
            << util::format_fixed(v[static_cast<std::size_t>(net.output_node)], 6)
            << " V vs model " << util::format_fixed(col.output(probe), 6)
            << " V\n";

  // ---- Manufacturing budget ----------------------------------------------
  const hardware::DeviceCounts devices = hardware::count_devices(*model);
  const hardware::PowerBreakdown power =
      hardware::estimate_power(*model, hardware::adapt_pnc_style());
  util::Table budget({"Metric", "Value"});
  budget.add_row({"Transistors", std::to_string(devices.transistors)});
  budget.add_row({"Resistors", std::to_string(devices.resistors)});
  budget.add_row({"Capacitors", std::to_string(devices.capacitors)});
  budget.add_row({"Total devices", std::to_string(devices.total())});
  budget.add_row({"Static power",
                  util::format_fixed(power.total() * 1e3, 3) + " mW"});
  budget.add_row({"  crossbars",
                  util::format_fixed(power.crossbar * 1e3, 3) + " mW"});
  budget.add_row({"  inverters",
                  util::format_fixed(power.inverters * 1e3, 3) + " mW"});
  budget.add_row({"  activations",
                  util::format_fixed(power.ptanh * 1e3, 3) + " mW"});
  const hardware::EnergyEstimate energy = hardware::estimate_inference_energy(
      *model, hardware::adapt_pnc_style(), ds.sample_period, ds.length);
  budget.add_row({"Energy / inference",
                  util::format_fixed(energy.total() * 1e6, 2) + " uJ (" +
                      util::format_fixed(energy.dynamic_joules * 1e6, 2) +
                      " uJ dynamic)"});
  std::cout << "\nPrinted label budget:\n";
  budget.print(std::cout);
  return 0;
}
