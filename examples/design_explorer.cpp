// Design-space explorer: what does each robustness ingredient buy on YOUR
// signal, and what does it cost in hardware?
//
// For a chosen dataset this sweeps filter order x variation-aware training
// x augmentation, reporting robust accuracy next to device count and
// static power — the accuracy/hardware trade-off a printed-electronics
// designer actually navigates (Tab. I + Tab. III in one view).
//
//   ./design_explorer [dataset]   (default: GPMVF)

#include <iostream>

#include "pnc/augment/augment.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/hardware/cost_model.hpp"
#include "pnc/train/trainer.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

struct DesignPoint {
  std::string label;
  core::FilterOrder order;
  bool variation_aware;
  bool augmented;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "GPMVF";
  const data::Dataset ds = data::make_dataset(dataset_name, 42);
  const auto classes = static_cast<std::size_t>(ds.num_classes);

  const std::vector<DesignPoint> points = {
      {"1st-order, plain", core::FilterOrder::kFirst, false, false},
      {"1st-order, VA", core::FilterOrder::kFirst, true, false},
      {"2nd-order, plain", core::FilterOrder::kSecond, false, false},
      {"2nd-order, VA+AT", core::FilterOrder::kSecond, true, true},
  };

  util::Table table({"Design", "Clean acc", "Robust acc", "Devices",
                     "Power (mW)"});
  for (const auto& point : points) {
    std::cerr << "training: " << point.label << "...\n";
    std::unique_ptr<core::PrintedTemporalNetwork> model =
        point.order == core::FilterOrder::kSecond
            ? core::make_adapt_pnc(classes, ds.sample_period, 1)
            : core::make_baseline_ptpnc(classes, ds.sample_period, 1);

    train::TrainConfig config;
    config.max_epochs = 100;
    config.patience = 12;
    if (point.variation_aware) {
      config.train_variation = variation::VariationSpec::printing(0.10, 3);
    }
    if (point.augmented) config.augmentation = augment::AugmentConfig{};
    (void)train::train(*model, ds, config);

    util::Rng rng(9);
    const double clean = train::evaluate_accuracy(
        *model, ds.test, variation::VariationSpec::none(), rng);
    const augment::Augmenter augmenter{augment::AugmentConfig{}};
    const data::Split perturbed = augmenter.augment_split(ds.test, rng, true);
    const double robust = train::evaluate_accuracy(
        *model, perturbed, variation::VariationSpec::printing(0.10), rng, 5);

    const auto style = point.order == core::FilterOrder::kSecond
                           ? hardware::adapt_pnc_style()
                           : hardware::legacy_ptpnc_style();
    table.add_row(
        {point.label, util::format_fixed(clean, 3),
         util::format_fixed(robust, 3),
         std::to_string(hardware::count_devices(*model).total()),
         util::format_fixed(hardware::estimate_power(*model, style).total() *
                                1e3,
                            3)});
  }

  std::cout << "\nDesign space for " << dataset_name << ":\n\n";
  table.print(std::cout);
  std::cout << "\nReading guide: robustness ingredients (2nd-order filters, "
               "variation-aware training, augmentation) buy robust accuracy "
               "at the cost of more printed devices; the high-resistance "
               "design point keeps static power low.\n";
  return 0;
}
