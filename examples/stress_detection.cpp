// Stress detection from a wearable electrodermal-activity (EDA) style
// signal — the paper's motivating near-sensor application (Sec. III,
// ref. [26]): absolute signal levels differ between wearers, so the
// *temporal dynamics* carry the class information, which is exactly what
// the learnable low-pass filters extract.
//
// We synthesize a two-class stream (calm: slow baseline wander; stressed:
// superimposed skin-conductance-response bursts with wearer-specific
// offsets), then compare a first-order pTPNC against the second-order
// ADAPT-pNC under sensor noise and component variation.

#include <cmath>
#include <iostream>

#include "pnc/augment/augment.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/data/preprocess.hpp"
#include "pnc/data/signals.hpp"
#include "pnc/train/metrics.hpp"
#include "pnc/train/trainer.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

/// One synthetic EDA window. Class 0 = calm, class 1 = stressed.
data::Series make_eda_window(int label, util::Rng& rng) {
  data::Series s;
  s.label = label;
  s.values.assign(64, 0.0);
  // Wearer-specific tonic level: carries no class information by design.
  data::add_ramp(s.values, rng.uniform(-0.6, 0.6), rng.uniform(-0.6, 0.6));
  if (label == 1) {
    // Phasic skin-conductance responses: 2-4 sharp rise / slow decay bursts.
    const int bursts = static_cast<int>(rng.uniform_int(2, 4));
    for (int b = 0; b < bursts; ++b) {
      const double onset = rng.uniform(0.1, 0.8);
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        const double t = static_cast<double>(i) / 63.0;
        if (t >= onset) {
          s.values[i] += 0.5 * std::exp(-(t - onset) / 0.08) *
                         (1.0 - std::exp(-(t - onset) / 0.015));
        }
      }
    }
  } else {
    // Calm: slow breathing-coupled oscillation only.
    data::add_sine(s.values, rng.uniform(0.5, 1.5), 0.1,
                   rng.uniform(0.0, 6.28));
  }
  data::add_noise(s.values, 0.06, rng);  // sensor noise
  return s;
}

data::Dataset make_eda_dataset(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<data::Series> series;
  for (int i = 0; i < 240; ++i) series.push_back(make_eda_window(i % 2, rng));
  const data::Normalization norm = data::fit_normalization(series);
  data::apply_normalization(series, norm);
  auto parts = data::stratified_split(std::move(series), rng);

  data::Dataset ds;
  ds.name = "synthetic-EDA";
  ds.num_classes = 2;
  ds.length = 64;
  ds.sample_period = 0.01;
  ds.train = data::pack(parts.train);
  ds.validation = data::pack(parts.validation);
  ds.test = data::pack(parts.test);
  return ds;
}

double robust_accuracy(core::SequenceClassifier& model,
                       const data::Dataset& ds) {
  util::Rng rng(11);
  const augment::Augmenter augmenter{augment::AugmentConfig{}};
  const data::Split perturbed = augmenter.augment_split(ds.test, rng, true);
  return train::evaluate_accuracy(model, perturbed,
                                  variation::VariationSpec::printing(0.10),
                                  rng, 5);
}

}  // namespace

int main() {
  const data::Dataset ds = make_eda_dataset(42);
  std::cout << "Synthetic EDA stress-detection stream: " << ds.train.size()
            << " training windows of " << ds.length << " samples\n\n";

  train::TrainConfig robust_cfg;
  robust_cfg.max_epochs = 120;
  robust_cfg.patience = 15;
  robust_cfg.train_variation = variation::VariationSpec::printing(0.10, 3);
  robust_cfg.augmentation = augment::AugmentConfig{};

  train::TrainConfig plain_cfg;
  plain_cfg.max_epochs = 120;
  plain_cfg.patience = 15;

  // First-order baseline, trained the legacy way.
  auto ptpnc = core::make_baseline_ptpnc(2, ds.sample_period, 1);
  (void)train::train(*ptpnc, ds, plain_cfg);

  // Second-order ADAPT-pNC with VA + AT.
  auto adapt = core::make_adapt_pnc(2, ds.sample_period, 1);
  (void)train::train(*adapt, ds, robust_cfg);

  util::Rng rng(3);
  const variation::VariationSpec clean = variation::VariationSpec::none();

  util::Table table({"Model", "Clean acc", "10% variation + noisy inputs"});
  table.add_row({"pTPNC (1st-order, plain training)",
                 util::format_fixed(
                     train::evaluate_accuracy(*ptpnc, ds.test, clean, rng), 3),
                 util::format_fixed(robust_accuracy(*ptpnc, ds), 3)});
  table.add_row({"ADAPT-pNC (SO-LF + VA + AT)",
                 util::format_fixed(
                     train::evaluate_accuracy(*adapt, ds.test, clean, rng), 3),
                 util::format_fixed(robust_accuracy(*adapt, ds), 3)});
  table.print(std::cout);

  // Per-class behaviour of the robust model under variation: which class
  // (calm vs stressed) suffers when circuits vary?
  train::ConfusionMatrix confusion(2);
  for (int rep = 0; rep < 5; ++rep) {
    confusion.accumulate(
        adapt->predict(ds.test.inputs,
                       variation::VariationSpec::printing(0.10), rng),
        ds.test.labels);
  }
  std::cout << "\nADAPT-pNC confusion under 10% variation (5 fabrications):\n"
            << confusion.to_string() << "macro-F1 = "
            << util::format_fixed(confusion.macro_f1(), 3) << "\n";

  // Show what the filters learned: time constants per channel.
  std::cout << "\nLearned SO-LF time constants (layer 1):\n";
  const auto& filters = adapt->layer1().filters();
  for (std::size_t j = 0; j < filters.channels(); ++j) {
    std::cout << "  channel " << j << ": tau1 = "
              << util::format_fixed(
                     filters.resistance(0, j) * filters.capacitance(0, j) * 1e3,
                     2)
              << " ms, tau2 = "
              << util::format_fixed(
                     filters.resistance(1, j) * filters.capacitance(1, j) * 1e3,
                     2)
              << " ms\n";
  }
  return 0;
}
