// Quickstart: build an ADAPT-pNC for a benchmark dataset, train it with
// variation awareness and augmentation, and evaluate it like the paper —
// under ±10 % printed-component variation with perturbed sensor inputs.
//
//   ./quickstart [dataset]        (default: PowerCons)

#include <iostream>

#include "pnc/augment/augment.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/core/serialize.hpp"
#include "pnc/data/dataset.hpp"
#include "pnc/train/trainer.hpp"
#include "pnc/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pnc;

  const std::string dataset_name = argc > 1 ? argv[1] : "PowerCons";

  // 1. Data: synthetic UCR-style benchmark, resized to 64 samples,
  //    normalized to [-1, 1], split 60/20/20.
  const data::Dataset ds = data::make_dataset(dataset_name, /*seed=*/42);
  std::cout << "Dataset " << ds.name << ": " << ds.train.size() << " train / "
            << ds.validation.size() << " val / " << ds.test.size()
            << " test series, " << ds.num_classes << " classes\n";

  // 2. Model: two second-order printed temporal processing blocks.
  auto model = core::make_adapt_pnc(static_cast<std::size_t>(ds.num_classes),
                                    ds.sample_period, /*seed=*/1,
                                    /*hidden_cap=*/9);
  std::cout << "ADAPT-pNC with " << model->parameter_count()
            << " trainable component values\n";

  // 3. Training: AdamW + plateau schedule, Monte-Carlo variation sampling
  //    (VA) and per-epoch augmentation (AT).
  train::TrainConfig config;
  config.max_epochs = 120;
  config.patience = 15;
  config.train_variation = variation::VariationSpec::printing(0.10, 3);
  config.augmentation = augment::AugmentConfig{};
  const train::TrainResult result = train::train(*model, ds, config);
  std::cout << "Trained " << result.epochs_run << " epochs in "
            << util::format_fixed(result.wall_seconds, 1)
            << " s; best validation accuracy "
            << util::format_fixed(result.best_validation_accuracy, 3) << "\n";

  // 4. Evaluation: clean vs the paper's robustness protocol.
  util::Rng rng(7);
  const double clean_acc = train::evaluate_accuracy(
      *model, ds.test, variation::VariationSpec::none(), rng);

  const augment::Augmenter augmenter{augment::AugmentConfig{}};
  const data::Split perturbed = augmenter.augment_split(ds.test, rng, true);
  const double robust_acc = train::evaluate_accuracy(
      *model, perturbed, variation::VariationSpec::printing(0.10), rng,
      /*repeats=*/5);

  std::cout << "Test accuracy (clean circuit, clean inputs):      "
            << util::format_fixed(clean_acc, 3) << "\n"
            << "Test accuracy (10% variation, perturbed inputs):  "
            << util::format_fixed(robust_acc, 3) << "\n";

  // 5. Checkpointing: save the trained component values and reload them
  //    into a freshly constructed network of the same topology.
  const std::string ckpt = "quickstart_checkpoint.txt";
  core::save_parameters(*model, ckpt);
  auto reloaded = core::make_adapt_pnc(
      static_cast<std::size_t>(ds.num_classes), ds.sample_period, /*seed=*/99,
      /*hidden_cap=*/9);
  core::load_parameters(*reloaded, ckpt);
  const double reloaded_acc = train::evaluate_accuracy(
      *reloaded, ds.test, variation::VariationSpec::none(), rng);
  std::cout << "Reloaded from " << ckpt << ": accuracy "
            << util::format_fixed(reloaded_acc, 3) << " (matches "
            << util::format_fixed(clean_acc, 3) << ")\n";
  return 0;
}
