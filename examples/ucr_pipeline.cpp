// Real-archive pipeline: how to run ADAPT-pNC on the actual UCR Time
// Series Classification Archive.
//
//   ./ucr_pipeline <TRAIN.tsv> <TEST.tsv> [name]
//
// loads the archive pair with data::make_ucr_dataset and runs the paper's
// protocol on it. Invoked without arguments the example stays
// self-contained: it writes a small synthetic archive pair to /tmp in the
// UCR file format, then exercises exactly the same code path.

#include <fstream>
#include <iostream>

#include "pnc/augment/augment.hpp"
#include "pnc/core/adapt_pnc.hpp"
#include "pnc/data/signals.hpp"
#include "pnc/data/ucr_io.hpp"
#include "pnc/train/trainer.hpp"
#include "pnc/util/table.hpp"

namespace {

using namespace pnc;

/// Write a toy two-class archive pair in the UCR TSV format.
void write_toy_archive(const std::string& train_path,
                       const std::string& test_path) {
  util::Rng rng(17);
  for (const auto& [path, count] :
       {std::pair{train_path, 60}, std::pair{test_path, 40}}) {
    std::ofstream f(path);
    for (int i = 0; i < count; ++i) {
      const int label = i % 2 + 1;  // UCR-style 1-based labels
      std::vector<double> x(96, 0.0);
      if (label == 1) {
        data::add_bump(x, 0.35, 0.08, 1.0);
      } else {
        data::add_bump(x, 0.65, 0.08, 1.0);
      }
      data::add_noise(x, 0.15, rng);
      f << label;
      for (double v : x) f << '\t' << v;
      f << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string train_path, test_path, name;
  if (argc >= 3) {
    train_path = argv[1];
    test_path = argv[2];
    name = argc >= 4 ? argv[3] : "UCR";
  } else {
    train_path = "/tmp/pnc_toy_TRAIN.tsv";
    test_path = "/tmp/pnc_toy_TEST.tsv";
    name = "ToyArchive";
    write_toy_archive(train_path, test_path);
    std::cout << "(no archive paths given: using a generated toy archive "
                 "in the UCR format)\n";
  }

  const data::Dataset ds =
      data::make_ucr_dataset(name, train_path, test_path, /*seed=*/42);
  std::cout << "Loaded " << ds.name << ": "
            << ds.train.size() + ds.validation.size() + ds.test.size()
            << " series, " << ds.num_classes << " classes, resized to "
            << ds.length << " samples\n";

  auto model = core::make_adapt_pnc(static_cast<std::size_t>(ds.num_classes),
                                    ds.sample_period, 1, /*hidden_cap=*/9);
  train::TrainConfig config;
  config.max_epochs = 120;
  config.patience = 15;
  config.train_variation = variation::VariationSpec::printing(0.10, 3);
  config.augmentation = augment::AugmentConfig{};
  const train::TrainResult result = train::train(*model, ds, config);

  util::Rng rng(3);
  const augment::Augmenter augmenter{augment::AugmentConfig{}};
  const data::Split perturbed = augmenter.augment_split(ds.test, rng, true);
  std::cout << "Trained " << result.epochs_run << " epochs.\n"
            << "Clean test accuracy:  "
            << util::format_fixed(
                   train::evaluate_accuracy(
                       *model, ds.test, variation::VariationSpec::none(), rng),
                   3)
            << "\nRobust test accuracy (10% variation + perturbed inputs): "
            << util::format_fixed(
                   train::evaluate_accuracy(
                       *model, perturbed,
                       variation::VariationSpec::printing(0.10), rng, 5),
                   3)
            << "\n";
  return 0;
}
